#include "net/socket_transport.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/expect.hpp"
#include "net/wire_codec.hpp"

namespace voronet::net {

namespace {

/// SplitMix64 finaliser -- the jitter hash shared by every backend, so
/// retransmissions desynchronise identically on sim, thread and socket.
[[nodiscard]] std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::size_t kMaxPooledPayload = 4096;
constexpr std::size_t kMaxPoolSize = 1024;
constexpr std::size_t kMaxPooledFrame = 1u << 16;
constexpr std::size_t kMaxFramePool = 256;
/// Compact an inbound reassembly buffer once this much is consumed.
constexpr std::size_t kCompactThreshold = 1u << 16;
constexpr std::size_t kReadChunk = 1u << 16;

[[nodiscard]] bool later(const double a_at, const std::uint64_t a_seq,
                         const double b_at, const std::uint64_t b_seq) {
  if (a_at != b_at) return a_at > b_at;
  return a_seq > b_seq;
}

constexpr std::chrono::microseconds kDriverNap{500};

}  // namespace

SocketTransport::SocketTransport(const NetworkConfig& config,
                                 SocketTransportConfig socket_config)
    : config_(config),
      socket_config_(std::move(socket_config)),
      start_(std::chrono::steady_clock::now()),
      rng_(config.seed) {
  VORONET_EXPECT(config.drop_probability >= 0.0 &&
                     config.drop_probability < 1.0,
                 "drop probability must lie in [0, 1)");
  VORONET_EXPECT(config.backoff_factor >= 1.0,
                 "retransmit backoff factor must be >= 1");
  VORONET_EXPECT(config.jitter >= 0.0 && config.jitter < 1.0,
                 "retransmit jitter must lie in [0, 1)");
  VORONET_EXPECT(socket_config_.patience > 0.0, "patience must be positive");
  rto_ = config.retransmit_timeout > 0.0
             ? config.retransmit_timeout
             : 2.0 * config.latency.high_quantile() + 0.01;
  rto_cap_ = config.rto_cap > 0.0 ? config.rto_cap : 16.0 * rto_;

  std::string err;
  Address listen_spec;
  if (socket_config_.listen.empty()) {
    listen_spec.family = Address::Family::kUnix;
    listen_spec.path = unique_uds_path();
  } else if (!parse_address(socket_config_.listen, listen_spec, err)) {
    throw std::runtime_error("SocketTransport: " + err);
  }
  listen_fd_ = open_listener(listen_spec, listen_addr_, err);
  if (listen_fd_ < 0) {
    throw std::runtime_error("SocketTransport: cannot listen on " +
                             listen_spec.spec() + ": " + err);
  }

  if (socket_config_.peers.empty()) {
    // Loopback: one peer, ourselves -- every frame round-trips through
    // the kernel and comes back in on an accepted connection.
    Peer self;
    self.addr = listen_addr_;
    peers_.push_back(std::move(self));
  } else {
    for (const std::string& spec : socket_config_.peers) {
      Peer peer;
      if (!parse_address(spec, peer.addr, err)) {
        ::close(listen_fd_);
        throw std::runtime_error("SocketTransport: " + err);
      }
      peers_.push_back(std::move(peer));
    }
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("SocketTransport: pipe() failed");
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];
  (void)set_nonblocking(wake_rd_);
  (void)set_nonblocking(wake_wr_);

  for (std::size_t i = 0; i < peers_.size(); ++i) {
    NetEvent ev;
    ev.kind = NetEvent::kConnect;
    ev.peer = i;
    ev.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
    inbox_.push_back(std::move(ev));  // no thread yet: direct, unlocked
  }
  io_thread_ = std::thread([this] { io_loop(); });
}

SocketTransport::~SocketTransport() {
  {
    std::lock_guard<std::mutex> lk(io_m_);
    stop_ = true;
  }
  wake_io();
  io_thread_.join();
  for (Peer& p : peers_) {
    if (p.fd >= 0) ::close(p.fd);
  }
  for (Inbound& c : inbound_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  ::close(listen_fd_);
  ::close(wake_rd_);
  ::close(wake_wr_);
  if (listen_addr_.family == Address::Family::kUnix) {
    ::unlink(listen_addr_.path.c_str());
  }
}

double SocketTransport::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double SocketTransport::backoff_timeout(std::uint64_t transfer_id,
                                        std::size_t attempts) const {
  const double exponent =
      std::min<double>(static_cast<double>(attempts - 1), 40.0);
  double timeout =
      std::min(rto_ * std::pow(config_.backoff_factor, exponent), rto_cap_);
  if (config_.jitter > 0.0) {
    const double u = static_cast<double>(
                         mix64(transfer_id * 0x2545f4914f6cdd1dULL +
                               attempts) >>
                         11) *
                     0x1.0p-53;
    timeout *= 1.0 + config_.jitter * (u - 0.5);
  }
  return timeout;
}

double SocketTransport::effective_drop_locked() const {
  double drop = config_.drop_probability;
  for (const double extra : loss_bursts_) drop += extra;
  return std::min(drop, 1.0);
}

bool SocketTransport::flag_locked(const std::vector<std::uint8_t>& flags,
                                  NodeId node) const {
  if (node < 0) return false;
  const auto idx = static_cast<std::size_t>(node);
  return idx < flags.size() && flags[idx] != 0;
}

void SocketTransport::set_flag(std::vector<std::uint8_t>& flags, NodeId node,
                               bool on) {
  if (node < 0) return;
  const auto idx = static_cast<std::size_t>(node);
  if (idx >= flags.size()) {
    if (!on) return;
    flags.resize(idx + 1, 0);
  }
  flags[idx] = on ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Slot table / payload pool / orphan window (the shared reliable-layer
// structures -- ThreadTransport's, verbatim)
// ---------------------------------------------------------------------------

SocketTransport::Transfer* SocketTransport::live_transfer_locked(
    std::uint32_t slot, std::uint64_t transfer_id) {
  if (slot == protocol::kNoTransferSlot || slot >= transfers_.size()) {
    return nullptr;
  }
  Transfer& t = transfers_[slot];
  return t.id == transfer_id ? &t : nullptr;
}

std::uint32_t SocketTransport::alloc_slot_locked() {
  ++in_flight_;
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  transfers_.emplace_back();
  return static_cast<std::uint32_t>(transfers_.size() - 1);
}

void SocketTransport::free_slot_locked(std::uint32_t slot) {
  Transfer& t = transfers_[slot];
  recycle_payload_locked(std::move(t.msg.entries));
  t.msg.entries.clear();
  t.id = 0;
  t.attempts = 1;
  t.delivered = false;
  t.settled = false;
  free_slots_.push_back(slot);
  VORONET_DCHECK(in_flight_ > 0);
  --in_flight_;
}

void SocketTransport::recycle_payload_locked(
    std::vector<ViewEntry>&& entries) {
  if (entries.capacity() == 0 || entries.capacity() > kMaxPooledPayload ||
      payload_pool_.size() >= kMaxPoolSize) {
    return;
  }
  entries.clear();
  payload_pool_.push_back(std::move(entries));
}

void SocketTransport::recycle_frame(std::vector<std::uint8_t>&& frame) {
  std::lock_guard<std::mutex> lk(g_);
  if (frame.capacity() == 0 || frame.capacity() > kMaxPooledFrame ||
      frame_pool_.size() >= kMaxFramePool) {
    return;
  }
  frame.clear();
  frame_pool_.push_back(std::move(frame));
}

SocketTransport::Message SocketTransport::draft(std::size_t reserve_entries) {
  std::lock_guard<std::mutex> lk(g_);
  Message m;
  if (!payload_pool_.empty()) {
    m.entries = std::move(payload_pool_.back());
    payload_pool_.pop_back();
  }
  if (reserve_entries > 0) m.entries.reserve(reserve_entries);
  return m;
}

bool SocketTransport::OrphanWindow::insert(std::uint64_t transfer_id,
                                           NodeId dst) {
  if (ring.empty()) ring.resize(protocol::Transport::kOrphanDedupCapacity);
  for (const Rec& r : ring) {
    if (r.transfer_id == transfer_id) return false;
  }
  Rec& r = ring[next];
  if (r.transfer_id != 0) --count;
  r.transfer_id = transfer_id;
  r.dst = dst;
  ++count;
  next = (next + 1) % ring.size();
  return true;
}

void SocketTransport::OrphanWindow::erase(std::uint64_t transfer_id) {
  for (Rec& r : ring) {
    if (r.transfer_id == transfer_id) {
      r = Rec{};
      --count;
      return;
    }
  }
}

void SocketTransport::OrphanWindow::erase_dst(NodeId dst) {
  for (Rec& r : ring) {
    if (r.transfer_id != 0 && r.dst == dst) {
      r = Rec{};
      --count;
    }
  }
}

std::size_t SocketTransport::dedup_entries() const {
  std::lock_guard<std::mutex> lk(g_);
  std::size_t n = orphans_.size();
  for (const Transfer& t : transfers_) {
    if (t.id != 0 && t.delivered) ++n;
  }
  return n;
}

std::size_t SocketTransport::dedup_window_size() const {
  std::lock_guard<std::mutex> lk(g_);
  return orphans_.size();
}

std::size_t SocketTransport::in_flight() const {
  std::lock_guard<std::mutex> lk(g_);
  return in_flight_;
}

std::size_t SocketTransport::stalled_backlog() const {
  std::lock_guard<std::mutex> lk(g_);
  return backlog_count_;
}

std::size_t SocketTransport::memory_bytes() const {
  std::lock_guard<std::mutex> lk(g_);
  std::size_t b = transfers_.size() * sizeof(Transfer);
  for (const Transfer& t : transfers_) {
    b += t.msg.entries.capacity() * sizeof(ViewEntry);
  }
  for (const auto& p : payload_pool_) b += p.capacity() * sizeof(ViewEntry);
  for (const auto& f : frame_pool_) b += f.capacity();
  b += free_slots_.capacity() * sizeof(std::uint32_t);
  b += orphans_.ring.capacity() * sizeof(OrphanWindow::Rec);
  b += crashed_.capacity() + stalled_.capacity();
  b += stall_backlog_.capacity() * sizeof(std::vector<Message>);
  for (const auto& backlog : stall_backlog_) {
    b += backlog.capacity() * sizeof(Message);
    for (const Message& m : backlog) {
      b += m.entries.capacity() * sizeof(ViewEntry);
    }
  }
  return b;
}

// ---------------------------------------------------------------------------
// Send / failure injection (driving thread)
// ---------------------------------------------------------------------------

void SocketTransport::send(Message msg) {
  std::lock_guard<std::mutex> lk(g_);
  msg.transfer_id = next_transfer_++;
  ++stats_.sends;
  const bool reliable = msg.type != sim::MessageKind::kAck;
  if (!reliable) {
    transmit_locked(msg);
    recycle_payload_locked(std::move(msg.entries));
    return;
  }
  const std::uint32_t slot = alloc_slot_locked();
  msg.transfer_slot = slot;
  transmit_locked(msg);
  Transfer& t = transfers_[slot];
  t.id = msg.transfer_id;
  recycle_payload_locked(std::move(t.msg.entries));
  const std::uint64_t id = msg.transfer_id;
  t.msg = std::move(msg);
  t.attempts = 1;
  t.delivered = false;
  t.settled = false;
  NetEvent timer;
  timer.at = now() + backoff_timeout(id, 1);
  timer.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  timer.kind = NetEvent::kRetransmit;
  timer.slot = slot;
  timer.transfer = id;
  post(std::move(timer));
}

void SocketTransport::crash(NodeId node) {
  std::lock_guard<std::mutex> lk(g_);
  set_flag(crashed_, node, true);
  set_flag(stalled_, node, false);
  if (node >= 0 && static_cast<std::size_t>(node) < stall_backlog_.size()) {
    backlog_count_ -= stall_backlog_[static_cast<std::size_t>(node)].size();
    stall_backlog_[static_cast<std::size_t>(node)].clear();
  }
}

void SocketTransport::stall(NodeId node) {
  std::lock_guard<std::mutex> lk(g_);
  if (flag_locked(crashed_, node)) return;  // dead beats wedged
  set_flag(stalled_, node, true);
}

void SocketTransport::resume(NodeId node) {
  std::lock_guard<std::mutex> lk(g_);
  if (!flag_locked(stalled_, node)) return;
  set_flag(stalled_, node, false);
  if (node < 0 || static_cast<std::size_t>(node) >= stall_backlog_.size()) {
    return;
  }
  std::vector<Message> backlog =
      std::move(stall_backlog_[static_cast<std::size_t>(node)]);
  stall_backlog_[static_cast<std::size_t>(node)].clear();
  backlog_count_ -= backlog.size();
  // Deliveries land in the upcall queue, so draining under g_ is safe:
  // nothing re-enters the application layer from here.
  for (Message& msg : backlog) receive_locked(std::move(msg));
}

void SocketTransport::resume_all() {
  std::vector<NodeId> wedged;
  {
    std::lock_guard<std::mutex> lk(g_);
    for (std::size_t n = 0; n < stalled_.size(); ++n) {
      if (stalled_[n] != 0) wedged.push_back(static_cast<NodeId>(n));
    }
  }
  for (const NodeId node : wedged) resume(node);
}

bool SocketTransport::crashed(NodeId node) const {
  std::lock_guard<std::mutex> lk(g_);
  return flag_locked(crashed_, node);
}

bool SocketTransport::stalled(NodeId node) const {
  std::lock_guard<std::mutex> lk(g_);
  return flag_locked(stalled_, node);
}

void SocketTransport::revive(NodeId node) {
  // Abandon predecessor-era transfers in ascending transfer-id order with
  // the crashed mark still set; the abandon handler runs outside g_ (it
  // may send afresh).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> stale;
  {
    std::lock_guard<std::mutex> lk(g_);
    for (std::uint32_t slot = 0; slot < transfers_.size(); ++slot) {
      const Transfer& t = transfers_[slot];
      if (t.id != 0 && (t.msg.src == node || t.msg.dst == node)) {
        stale.emplace_back(t.id, slot);
      }
    }
  }
  std::sort(stale.begin(), stale.end());
  for (const auto& [id, slot] : stale) {
    Message msg;
    bool live = false;
    {
      std::lock_guard<std::mutex> lk(g_);
      if (Transfer* t = live_transfer_locked(slot, id)) {
        live = true;
        ++stats_.abandoned;
        metrics_.record_transfer_attempts(t->attempts);
        msg = std::move(t->msg);
        free_slot_locked(slot);
      }
    }
    if (!live) continue;  // settled (ack raced) or re-abandoned already
    if (abandon_) abandon_(msg);
    std::lock_guard<std::mutex> lk(g_);
    recycle_payload_locked(std::move(msg.entries));
  }
  std::lock_guard<std::mutex> lk(g_);
  set_flag(crashed_, node, false);
  if (!orphans_.empty()) orphans_.erase_dst(node);
  set_flag(stalled_, node, false);
  if (node >= 0 && static_cast<std::size_t>(node) < stall_backlog_.size()) {
    backlog_count_ -= stall_backlog_[static_cast<std::size_t>(node)].size();
    stall_backlog_[static_cast<std::size_t>(node)].clear();
  }
}

void SocketTransport::begin_loss_burst(double extra_drop) {
  std::lock_guard<std::mutex> lk(g_);
  loss_bursts_.push_back(extra_drop);
}

void SocketTransport::end_loss_burst(double extra_drop) {
  std::lock_guard<std::mutex> lk(g_);
  const auto it =
      std::find(loss_bursts_.begin(), loss_bursts_.end(), extra_drop);
  if (it != loss_bursts_.end()) loss_bursts_.erase(it);
}

void SocketTransport::begin_latency_spike(double factor) {
  std::lock_guard<std::mutex> lk(g_);
  latency_spikes_.push_back(factor);
}

void SocketTransport::end_latency_spike(double factor) {
  std::lock_guard<std::mutex> lk(g_);
  const auto it =
      std::find(latency_spikes_.begin(), latency_spikes_.end(), factor);
  if (it != latency_spikes_.end()) latency_spikes_.erase(it);
}

void SocketTransport::begin_duplication(double probability) {
  std::lock_guard<std::mutex> lk(g_);
  duplications_.push_back(probability);
}

void SocketTransport::end_duplication(double probability) {
  std::lock_guard<std::mutex> lk(g_);
  const auto it =
      std::find(duplications_.begin(), duplications_.end(), probability);
  if (it != duplications_.end()) duplications_.erase(it);
}

void SocketTransport::set_link_filter(LinkFilter up) {
  std::lock_guard<std::mutex> lk(g_);
  link_up_ = std::move(up);
}

void SocketTransport::clear_link_filter() {
  std::lock_guard<std::mutex> lk(g_);
  link_up_ = nullptr;
}

// ---------------------------------------------------------------------------
// Wire (framing on the way out; loss and degradation drawn BEFORE bytes)
// ---------------------------------------------------------------------------

void SocketTransport::enqueue_frame_locked(const Message& msg, double delay) {
  std::vector<std::uint8_t> frame;
  if (!frame_pool_.empty()) {
    frame = std::move(frame_pool_.back());
    frame_pool_.pop_back();
    frame.clear();
  }
  encode_frame(msg, frame);
  NetEvent ev;
  ev.at = now() + delay;
  ev.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  ev.kind = NetEvent::kWrite;
  ev.peer = msg.dst < 0 ? 0
                        : static_cast<std::size_t>(msg.dst) % peers_.size();
  ev.frame = std::move(frame);
  wire_pending_.fetch_add(1);
  post(std::move(ev));
}

void SocketTransport::transmit_locked(const Message& msg) {
  ++stats_.transmissions;
  metrics_.count_message(msg.type);
  metrics_.count_wire_bytes(msg.type, wire_frame_size(msg));
  stats_.wire_bytes += wire_frame_size(msg);
  if (msg.type == sim::MessageKind::kAck) ++stats_.acks;
  const bool link_down = link_up_ && !link_up_(msg.src, msg.dst);
  const double drop = effective_drop_locked();
  if (link_down || (drop > 0.0 && rng_.chance(drop))) {
    ++stats_.dropped;
    return;  // a lost frame is never even encoded
  }
  double delay = config_.latency.sample(rng_);
  for (const double factor : latency_spikes_) delay *= factor;
  enqueue_frame_locked(msg, delay);
  if (!duplications_.empty()) {
    const double dup =
        *std::max_element(duplications_.begin(), duplications_.end());
    if (dup > 0.0 && rng_.chance(dup)) {
      ++stats_.injected_duplicates;
      double dup_delay = config_.latency.sample(rng_);
      for (const double factor : latency_spikes_) dup_delay *= factor;
      enqueue_frame_locked(msg, dup_delay);
    }
  }
}

void SocketTransport::receive_locked(Message msg) {
  Message ack;
  ack.type = sim::MessageKind::kAck;
  ack.src = msg.dst;
  ack.dst = msg.src;
  ack.transfer_id = msg.transfer_id;
  ack.transfer_slot = msg.transfer_slot;
  transmit_locked(ack);

  bool fresh;
  if (Transfer* t = live_transfer_locked(msg.transfer_slot,
                                         msg.transfer_id)) {
    fresh = !t->delivered;
    t->delivered = true;
  } else {
    fresh = orphans_.insert(msg.transfer_id, msg.dst);
  }
  if (!fresh) {
    ++stats_.duplicates;
    recycle_payload_locked(std::move(msg.entries));
    return;
  }
  ++stats_.delivered;
  Upcall up;
  up.kind = Upcall::kDeliver;
  up.msg = std::move(msg);
  push_upcall(std::move(up));
}

void SocketTransport::settle_locked(std::uint32_t slot,
                                    std::uint64_t transfer_id) {
  if (Transfer* t = live_transfer_locked(slot, transfer_id)) {
    metrics_.record_transfer_attempts(t->attempts);
    t->settled = true;  // the pending retransmit event is now a no-op
    free_slot_locked(slot);
  }
  if (!orphans_.empty()) orphans_.erase(transfer_id);
}

void SocketTransport::retransmit_locked(std::uint32_t slot,
                                        std::uint64_t transfer_id) {
  Transfer* t = live_transfer_locked(slot, transfer_id);
  if (t == nullptr) return;  // acknowledged in the meantime
  const bool give_up =
      flag_locked(crashed_, t->msg.dst) || flag_locked(crashed_, t->msg.src) ||
      (config_.max_retries > 0 && t->attempts > config_.max_retries);
  if (give_up) {
    ++stats_.abandoned;
    metrics_.record_transfer_attempts(t->attempts);
    Upcall up;
    up.kind = Upcall::kAbandon;
    up.msg = std::move(t->msg);
    free_slot_locked(slot);
    push_upcall(std::move(up));
    return;
  }
  ++t->attempts;
  ++stats_.retransmits;
  transmit_locked(t->msg);
  NetEvent timer;
  timer.at = now() + backoff_timeout(transfer_id, t->attempts);
  timer.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  timer.kind = NetEvent::kRetransmit;
  timer.slot = slot;
  timer.transfer = transfer_id;
  post(std::move(timer));
}

void SocketTransport::process_arrival(Message msg) {
  {
    std::lock_guard<std::mutex> lk(g_);
    if (msg.type == sim::MessageKind::kAck) {
      settle_locked(msg.transfer_slot, msg.transfer_id);
      recycle_payload_locked(std::move(msg.entries));
    } else if (flag_locked(crashed_, msg.dst)) {
      ++stats_.dropped;
      recycle_payload_locked(std::move(msg.entries));
    } else if (flag_locked(stalled_, msg.dst)) {
      ++stats_.stalled_deferred;
      const auto idx = static_cast<std::size_t>(msg.dst);
      if (idx >= stall_backlog_.size()) stall_backlog_.resize(idx + 1);
      stall_backlog_[idx].push_back(std::move(msg));
      ++backlog_count_;
    } else {
      receive_locked(std::move(msg));
    }
  }
  // Decrement AFTER the consequences (acks, upcalls) are published: the
  // driver's quiescence probe reads wire_pending_ first, so 0 means every
  // consequence is already visible to it.
  wire_pending_.fetch_sub(1);
  up_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// I/O thread: poll loop, timed events, connect/reconnect, frame I/O
// ---------------------------------------------------------------------------

void SocketTransport::post(NetEvent ev) {
  {
    std::lock_guard<std::mutex> lk(io_m_);
    inbox_.push_back(std::move(ev));
  }
  wake_io();
}

void SocketTransport::wake_io() {
  const char byte = 1;
  // EAGAIN means the pipe already holds a wakeup; that is enough.
  (void)!::write(wake_wr_, &byte, 1);
}

void SocketTransport::process_due(NetEvent& ev) {
  switch (ev.kind) {
    case NetEvent::kWrite:
      peers_[ev.peer].outq.push_back(std::move(ev.frame));
      break;
    case NetEvent::kRetransmit: {
      std::lock_guard<std::mutex> lk(g_);
      retransmit_locked(ev.slot, ev.transfer);
      break;
    }
    case NetEvent::kConnect:
      try_connect(ev.peer);
      break;
  }
}

void SocketTransport::try_connect(std::size_t peer_index) {
  Peer& peer = peers_[peer_index];
  if (peer.fd >= 0) return;
  bool in_progress = false;
  std::string err;
  const int fd = start_connect(peer.addr, in_progress, err);
  if (fd < 0) {
    ++peer.attempts;
    const double exponent =
        std::min<double>(static_cast<double>(peer.attempts - 1), 20.0);
    const double wait = std::min(
        socket_config_.reconnect_base * std::pow(2.0, exponent),
        socket_config_.reconnect_cap);
    NetEvent retry;
    retry.at = now() + wait;
    retry.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
    retry.kind = NetEvent::kConnect;
    retry.peer = peer_index;
    heap_.push_back(std::move(retry));
    std::push_heap(heap_.begin(), heap_.end(),
                   [](const NetEvent& a, const NetEvent& b) {
                     return later(a.at, a.seq, b.at, b.seq);
                   });
    return;
  }
  peer.fd = fd;
  peer.connecting = in_progress;
  if (!in_progress) peer.attempts = 0;
}

void SocketTransport::peer_down(Peer& peer, std::size_t peer_index) {
  if (peer.fd >= 0) ::close(peer.fd);
  peer.fd = -1;
  peer.connecting = false;
  // Frames queued for a dead connection are wire losses: the reliable
  // layer's retransmit timers, which survive the connection, re-send.
  const std::size_t lost = peer.outq.size();
  if (lost > 0) {
    std::lock_guard<std::mutex> lk(g_);
    stats_.dropped += lost;
  }
  for (auto& frame : peer.outq) recycle_frame(std::move(frame));
  peer.outq.clear();
  peer.out_off = 0;
  if (lost > 0) wire_pending_.fetch_sub(lost);
  ++peer.attempts;
  const double exponent =
      std::min<double>(static_cast<double>(peer.attempts - 1), 20.0);
  const double wait =
      std::min(socket_config_.reconnect_base * std::pow(2.0, exponent),
               socket_config_.reconnect_cap);
  NetEvent retry;
  retry.at = now() + wait;
  retry.seq = event_seq_.fetch_add(1, std::memory_order_relaxed);
  retry.kind = NetEvent::kConnect;
  retry.peer = peer_index;
  heap_.push_back(std::move(retry));
  std::push_heap(heap_.begin(), heap_.end(),
                 [](const NetEvent& a, const NetEvent& b) {
                   return later(a.at, a.seq, b.at, b.seq);
                 });
  up_cv_.notify_all();
}

void SocketTransport::flush_peer(Peer& peer, std::size_t peer_index) {
  if (peer.fd < 0 || peer.connecting) return;
  while (!peer.outq.empty()) {
    std::vector<std::uint8_t>& frame = peer.outq.front();
    const ssize_t n =
        ::write(peer.fd, frame.data() + peer.out_off,
                frame.size() - peer.out_off);
    if (n > 0) {
      peer.out_off += static_cast<std::size_t>(n);
      if (peer.out_off == frame.size()) {
        recycle_frame(std::move(frame));
        peer.outq.pop_front();
        peer.out_off = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    peer_down(peer, peer_index);
    return;
  }
}

void SocketTransport::read_inbound(Inbound& conn) {
  bool closed = false;
  for (;;) {
    const std::size_t old = conn.buf.size();
    conn.buf.resize(old + kReadChunk);
    const ssize_t n = ::read(conn.fd, conn.buf.data() + old, kReadChunk);
    conn.buf.resize(old + (n > 0 ? static_cast<std::size_t>(n) : 0));
    if (n > 0) {
      if (static_cast<std::size_t>(n) < kReadChunk) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // EOF or hard error; finish decoding what we have -- a complete
    // frame followed by EOF is still a frame -- then drop the fd.
    closed = true;
    break;
  }
  for (;;) {
    Message msg;
    {
      std::lock_guard<std::mutex> lk(g_);
      if (!payload_pool_.empty()) {
        msg.entries = std::move(payload_pool_.back());
        payload_pool_.pop_back();
      }
    }
    std::size_t consumed = 0;
    std::string diag;
    const DecodeStatus st =
        decode_frame(conn.buf.data() + conn.off, conn.buf.size() - conn.off,
                     consumed, msg, &diag);
    if (st == DecodeStatus::kNeedMore) {
      std::lock_guard<std::mutex> lk(g_);
      recycle_payload_locked(std::move(msg.entries));
      break;
    }
    if (st != DecodeStatus::kOk) {
      // No resync point in a corrupt stream: drop the connection.  The
      // reliable layer retransmits anything that was lost with it.
      std::fprintf(stderr, "voronet socket: dropping connection: %s (%s)\n",
                   diag.c_str(), decode_status_name(st));
      ::close(conn.fd);
      conn.fd = -1;
      {
        std::lock_guard<std::mutex> lk(g_);
        recycle_payload_locked(std::move(msg.entries));
      }
      return;
    }
    conn.off += consumed;
    process_arrival(std::move(msg));
  }
  if (closed && conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
  if (conn.off == conn.buf.size()) {
    conn.buf.clear();
    conn.off = 0;
  } else if (conn.off > kCompactThreshold) {
    conn.buf.erase(conn.buf.begin(),
                   conn.buf.begin() + static_cast<std::ptrdiff_t>(conn.off));
    conn.off = 0;
  }
}

void SocketTransport::io_loop() {
  const auto cmp = [](const NetEvent& a, const NetEvent& b) {
    return later(a.at, a.seq, b.at, b.seq);
  };
  struct PollRef {
    enum Kind : std::uint8_t { kWake, kListen, kPeer, kInbound } kind;
    std::size_t index = 0;
  };
  std::vector<pollfd> pfds;
  std::vector<PollRef> refs;
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(io_m_);
      for (NetEvent& ev : inbox_) {
        heap_.push_back(std::move(ev));
        std::push_heap(heap_.begin(), heap_.end(), cmp);
      }
      inbox_.clear();
      if (stop_) break;
    }
    bool progressed = false;
    const double t = now();
    while (!heap_.empty() && heap_.front().at <= t) {
      std::pop_heap(heap_.begin(), heap_.end(), cmp);
      NetEvent ev = std::move(heap_.back());
      heap_.pop_back();
      process_due(ev);
      progressed = true;
    }
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      flush_peer(peers_[i], i);
    }
    if (progressed) continue;  // new events may have landed in the inbox

    pfds.clear();
    refs.clear();
    pfds.push_back({wake_rd_, POLLIN, 0});
    refs.push_back({PollRef::kWake});
    pfds.push_back({listen_fd_, POLLIN, 0});
    refs.push_back({PollRef::kListen});
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      const Peer& p = peers_[i];
      if (p.fd < 0) continue;
      short events = POLLIN;
      if (p.connecting || !p.outq.empty()) events |= POLLOUT;
      pfds.push_back({p.fd, events, 0});
      refs.push_back({PollRef::kPeer, i});
    }
    for (std::size_t i = 0; i < inbound_.size(); ++i) {
      pfds.push_back({inbound_[i].fd, POLLIN, 0});
      refs.push_back({PollRef::kInbound, i});
    }
    int timeout_ms = -1;
    if (!heap_.empty()) {
      const double dt = heap_.front().at - now();
      timeout_ms = dt <= 0.0
                       ? 0
                       : static_cast<int>(std::min(dt * 1000.0 + 1.0, 1000.0));
    }
    const int ready = ::poll(pfds.data(),
                             static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (ready <= 0) continue;

    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const short revents = pfds[i].revents;
      if (revents == 0) continue;
      switch (refs[i].kind) {
        case PollRef::kWake: {
          char buf[64];
          while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
          }
          break;
        }
        case PollRef::kListen: {
          for (;;) {
            const int fd = accept_conn(listen_fd_);
            if (fd < 0) break;
            Inbound conn;
            conn.fd = fd;
            inbound_.push_back(std::move(conn));
          }
          break;
        }
        case PollRef::kPeer: {
          Peer& p = peers_[refs[i].index];
          if (p.fd != pfds[i].fd) break;  // closed earlier this pass
          if (p.connecting) {
            if ((revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
              const int soerr = finish_connect(p.fd);
              if (soerr == 0) {
                p.connecting = false;
                p.attempts = 0;
              } else {
                peer_down(p, refs[i].index);
                break;
              }
            }
          }
          if ((revents & (POLLERR | POLLHUP)) != 0) {
            peer_down(p, refs[i].index);
            break;
          }
          if ((revents & POLLIN) != 0) {
            // Peers never send data back on our outbound connection in
            // this topology; readable here means EOF or junk.
            char buf[256];
            const ssize_t n = ::read(p.fd, buf, sizeof(buf));
            if (n == 0 ||
                (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
              peer_down(p, refs[i].index);
              break;
            }
          }
          flush_peer(p, refs[i].index);
          break;
        }
        case PollRef::kInbound: {
          Inbound& conn = inbound_[refs[i].index];
          if (conn.fd != pfds[i].fd) break;
          read_inbound(conn);
          break;
        }
      }
    }
    // Reap inbound connections closed during dispatch (EOF, decode error).
    std::erase_if(inbound_, [](const Inbound& conn) { return conn.fd < 0; });
  }
}

// ---------------------------------------------------------------------------
// Driving (application thread)
// ---------------------------------------------------------------------------

void SocketTransport::push_upcall(Upcall up) {
  std::lock_guard<std::mutex> lk(up_m_);
  upcalls_.push_back(std::move(up));
  up_cv_.notify_all();
}

void SocketTransport::schedule(double delay, Task fn) {
  const auto cmp = [](const DriverTimer& a, const DriverTimer& b) {
    return later(a.at, a.seq, b.at, b.seq);
  };
  DriverTimer timer;
  timer.at = now() + std::max(delay, 0.0);
  timer.seq = timer_seq_++;
  timer.fn = std::move(fn);
  timers_.push_back(std::move(timer));
  std::push_heap(timers_.begin(), timers_.end(), cmp);
}

std::size_t SocketTransport::pump() {
  const auto cmp = [](const DriverTimer& a, const DriverTimer& b) {
    return later(a.at, a.seq, b.at, b.seq);
  };
  std::size_t processed = 0;
  for (;;) {
    if (!timers_.empty() && timers_.front().at <= now()) {
      std::pop_heap(timers_.begin(), timers_.end(), cmp);
      DriverTimer timer = std::move(timers_.back());
      timers_.pop_back();
      ++processed;
      timer.fn();
      continue;
    }
    Upcall up;
    {
      std::lock_guard<std::mutex> lk(up_m_);
      if (upcalls_.empty()) break;
      up = std::move(upcalls_.front());
      upcalls_.pop_front();
    }
    ++processed;
    if (up.kind == Upcall::kDeliver) {
      if (sink_) sink_(up.msg);
    } else {
      if (abandon_) abandon_(up.msg);
    }
    std::lock_guard<std::mutex> lk(g_);
    recycle_payload_locked(std::move(up.msg.entries));
  }
  return processed;
}

bool SocketTransport::quiescent() const {
  if (wire_pending_.load() != 0) return false;
  {
    std::lock_guard<std::mutex> lk(g_);
    if (in_flight_ != 0) return false;
  }
  {
    std::lock_guard<std::mutex> lk(up_m_);
    if (!upcalls_.empty()) return false;
  }
  return timers_.empty();
}

protocol::Transport::RunResult SocketTransport::run_to_idle(
    std::size_t max_events) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(socket_config_.patience));
  RunResult result;
  for (;;) {
    result.processed += pump();
    if (result.processed >= max_events) {
      result.budget_exhausted = true;
      return result;
    }
    if (quiescent()) return result;
    if (std::chrono::steady_clock::now() >= deadline) {
      result.budget_exhausted = true;
      return result;
    }
    std::unique_lock<std::mutex> lk(up_m_);
    if (!upcalls_.empty()) continue;
    auto nap = std::chrono::steady_clock::duration(kDriverNap);
    if (!timers_.empty()) {
      const auto until_timer =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timers_.front().at - now()));
      nap = std::min(nap,
                     std::max(until_timer,
                              std::chrono::steady_clock::duration::zero()));
    }
    up_cv_.wait_for(lk, nap);
  }
}

protocol::Transport::RunResult SocketTransport::run_until(double horizon) {
  RunResult result;
  for (;;) {
    result.processed += pump();
    const double t = now();
    if (t >= horizon) return result;
    std::unique_lock<std::mutex> lk(up_m_);
    if (!upcalls_.empty()) continue;
    auto nap = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(horizon - t));
    nap = std::min(nap, std::chrono::steady_clock::duration(kDriverNap));
    if (!timers_.empty()) {
      const auto until_timer =
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(timers_.front().at - t));
      nap = std::min(nap,
                     std::max(until_timer,
                              std::chrono::steady_clock::duration::zero()));
    }
    up_cv_.wait_for(lk, nap);
  }
}

}  // namespace voronet::net
