// ServedShard: one process hosting an overlay shard behind a socket.
//
// This is the multi-process face of the serving layer: the shard owns a
// populated ProtocolHarness (any transport backend for the overlay's
// OWN wire traffic -- sim, thread, or socket) plus the src/serve
// front-end (admission, batching, result cache), and listens on a Unix
// or TCP socket speaking serve_wire frames.  External clients submit
// radius / range queries and receive kAnswer frames with the exact
// match sets; kGetReport drains the transport, grades every ticket
// against the sequential ground truth (the same roster scan as
// serve::run_open_loop), and ships the stats back.
//
// Concurrency model: run() IS the transport's driving thread.  The loop
// alternates short poll() passes over the client sockets with short
// run_until() slices of the harness, so every QueryServer entry point
// and every protocol upcall executes on this one thread -- the
// single-threaded serving contract of src/serve holds unchanged across
// the process boundary.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/serve_wire.hpp"
#include "net/socket.hpp"
#include "protocol/query_harness.hpp"
#include "serve/query_server.hpp"

namespace voronet::net {

struct ServedConfig {
  /// Client-facing listen spec ("uds:/path" / "tcp:host:port"; empty
  /// picks a fresh Unix-domain path -- read it back via address()).
  std::string listen;
  std::size_t objects = 150;
  std::uint64_t seed = 0x5e12dULL;
  /// Transport backend for the overlay's internal wire traffic.
  protocol::TransportKind backend = protocol::TransportKind::kThread;
  unsigned shards = 0;             ///< thread-backend actor threads
  std::string transport_listen;    ///< socket-backend internal listen spec
  serve::ServeConfig serve;
  /// Harness drive quantum per loop pass (wall seconds on the thread /
  /// socket backends, virtual seconds on sim).
  double slice = 0.002;
  /// Short-wire latency model + failure detector, scaled like
  /// bench_serve's cells so shard numbers are comparable.
  double latency_low = 0.0005;
  double latency_high = 0.002;
  double failure_detect_delay = 0.05;
};

class ServedShard {
 public:
  /// Builds the overlay (message-level joins to quiescence) and binds
  /// the listen socket; throws std::runtime_error when the bind fails.
  explicit ServedShard(const ServedConfig& config);
  ~ServedShard();

  ServedShard(const ServedShard&) = delete;
  ServedShard& operator=(const ServedShard&) = delete;

  /// The bound client-facing address (resolved TCP port / UDS path).
  [[nodiscard]] const Address& address() const { return addr_; }
  [[nodiscard]] protocol::ProtocolHarness& harness() {
    return query_harness_->harness();
  }

  /// Serve until a client sends kShutdown (or stop() is called from
  /// another thread).  Returns the number of queries answered.
  std::uint64_t serve();
  void stop() { stop_.store(true, std::memory_order_relaxed); }

 private:
  struct Client {
    int fd = -1;
    std::vector<std::uint8_t> in;   ///< reassembly buffer
    std::size_t in_off = 0;         ///< consumed prefix of `in`
    std::vector<std::uint8_t> out;  ///< pending writes
    std::size_t out_off = 0;
    std::uint64_t serial = 0;       ///< stable id across the clients_ vector
  };
  /// One submitted ticket awaiting its answer frame.
  struct PendingAnswer {
    serve::QueryServer::TicketId ticket = 0;
    std::uint64_t client_serial = 0;
    std::uint64_t request_id = 0;
  };

  void accept_clients();
  /// Drain readable bytes and execute every complete frame; returns
  /// false when the connection must close (EOF or corrupt frame).
  bool read_client(Client& client);
  bool handle_frame(Client& client, const ServeFrame& frame);
  /// Move answered tickets from pending_ to their clients' out buffers.
  void sweep_answers();
  void send_frame(Client& client, const ServeFrame& frame);
  /// Write as much of client.out as the socket accepts.
  bool flush_client(Client& client);
  [[nodiscard]] Client* find_client(std::uint64_t serial);
  [[nodiscard]] ServeFrame build_report(std::uint64_t request_id);

  ServedConfig config_;
  std::unique_ptr<protocol::QueryHarness> query_harness_;
  std::unique_ptr<serve::QueryServer> server_;
  Address addr_;
  int listen_fd_ = -1;
  std::vector<Client> clients_;
  std::uint64_t next_serial_ = 1;
  std::vector<PendingAnswer> pending_;
  std::vector<serve::QueryServer::TicketId> all_tickets_;  ///< for grading
  std::uint64_t answered_ = 0;
  bool drained_ = true;  ///< last run_to_idle reached quiescence
  std::atomic<bool> stop_{false};
};

}  // namespace voronet::net
