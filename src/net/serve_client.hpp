// Client side of the serving boundary: a blocking-convenience wrapper
// over one serve_wire connection, plus the two workload drivers that
// make a remote shard a drop-in measurement target --
// run_open_loop_remote mirrors serve::run_open_loop (identical Poisson
// schedule, identical LoadReport shape, wall-clock latencies measured
// at THIS process), and drive_query_stream interprets the scenario
// vocabulary's query events (kQueryStream / kRangeQuery /
// kRadiusQuery) against the socket instead of an in-process harness.
//
// Threading: a ServeClient is single-threaded -- every method runs on
// the caller's thread, reads drain inline.  The fd is nonblocking; the
// "blocking" methods poll with deadlines so a dead server surfaces as
// a timeout error, not a hang.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/serve_wire.hpp"
#include "scenario/events.hpp"

namespace voronet::serve {
struct LoadConfig;
struct LoadReport;
}  // namespace voronet::serve

namespace voronet::net {

class ServeClient {
 public:
  /// Invoked (on the polling thread) for every kAnswer frame.
  using AnswerHandler = std::function<void(const ServeFrame&)>;

  /// Connect to "uds:..." / "tcp:...", retrying until `connect_timeout`
  /// wall seconds elapse (the server process may still be populating its
  /// overlay), then complete the kHello round trip.  Throws
  /// std::runtime_error on timeout or a malformed spec.
  explicit ServeClient(const std::string& spec, double connect_timeout = 30.0);
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  void set_answer_handler(AnswerHandler handler) {
    on_answer_ = std::move(handler);
  }

  /// Submit a query; returns the request id the kAnswer will echo.
  std::uint64_t submit_radius(Vec2 centre, double radius);
  std::uint64_t submit_range(Vec2 a, Vec2 b, double tol);

  /// Drain arrived answers, waiting up to `timeout_s` for the first
  /// byte; returns the number of answers handled.
  std::size_t poll_answers(double timeout_s);

  /// Drain + grade round trip (answers arriving before the report are
  /// handled normally).  Throws on timeout or connection loss.
  ServeFrame get_report(double timeout_s = 120.0);

  /// Ask the server process to exit its serve loop.
  void shutdown_server();

  /// Shard population reported by the kHello banner.
  [[nodiscard]] std::uint64_t objects() const { return objects_; }
  /// Submitted queries whose answers have not arrived yet.
  [[nodiscard]] std::uint64_t outstanding() const { return outstanding_; }

 private:
  std::uint64_t next_request_id();
  void send_frame(const ServeFrame& frame);
  /// Read + dispatch frames until one of kind `wait_for` arrives (into
  /// `reply`) or `timeout_s` elapses; pass kAnswer to just drain.
  /// Returns false on timeout; throws on EOF / corrupt stream.
  bool pump(double timeout_s, ServeKind wait_for, ServeFrame* reply,
            std::size_t* answers);

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::uint64_t outstanding_ = 0;
  std::uint64_t objects_ = 0;
  std::vector<std::uint8_t> in_;
  std::size_t in_off_ = 0;
  std::vector<std::uint8_t> out_;
  AnswerHandler on_answer_;
};

/// serve::run_open_loop over a socket: the identical Poisson arrival
/// schedule (same seed, same Rng draw sequence), paced on THIS process's
/// wall clock, with per-query latency measured submit -> answer.  The
/// returned LoadReport merges client-side fields (offered, latency
/// distribution, completion) with the server's post-drain report
/// (admission / batching stats, grading, drained); `server_report`
/// (when non-null) additionally receives the raw kReport frame -- the
/// overlay-internal wire_bytes live there.
serve::LoadReport run_open_loop_remote(ServeClient& client,
                                       const serve::LoadConfig& config,
                                       ServeFrame* server_report = nullptr);

/// Interpret one scenario query event against a remote shard: explicit
/// kRangeQuery / kRadiusQuery geometry is submitted as-is, kQueryStream
/// draws its mix and per-operation times (kEven / kUniform / kPoisson
/// over [at, at+duration], taken as wall seconds from the call) and its
/// scale-free geometry from `seed` exactly like the in-process
/// scheduler.  Returns the number of queries submitted; answers arrive
/// through the client's answer handler.
std::size_t drive_query_stream(ServeClient& client,
                               const scenario::Event& event,
                               std::uint64_t seed);

}  // namespace voronet::net
