// The socket Transport backend: real frames over real file descriptors.
//
// Where ThreadTransport plays the wire with in-process shard threads,
// SocketTransport puts every message THROUGH THE KERNEL: each wire
// attempt is one codec frame (net/wire_codec.hpp) written to a
// nonblocking stream socket -- Unix-domain or TCP -- and read back,
// reassembled and decoded by a poll() event loop.  The reliable-delivery
// state machine above the wire (transfer slots, acks, capped-exponential
// retransmission, the bounded orphan dedup window, crash/stall marks) is
// ThreadTransport's, verbatim: tests/transport_conformance_test runs the
// same contract suite against all three backends.
//
// Topology: the transport binds one listen address and maintains one
// outbound connection per configured peer, routing a frame for node
// `dst` to peer `dst % peers`.  The default -- no peers configured -- is
// the *loopback* arrangement: the transport connects to its own listen
// socket, so every frame and every ack genuinely crosses the kernel
// while all nodes stay in this process.  That is the conformance-suite
// configuration and the arrangement tools/voronet_served runs (the
// VoroNet differential harness needs the shared ground-truth overlay in
// one process; what multi-process buys is the serving boundary, see
// net/serve_loop.hpp).  Outbound connections reconnect with
// capped-exponential backoff; frames scheduled while a peer is down wait
// in its queue (the reliable layer's retransmit timers, not the
// connection layer, decide abandonment).
//
// Failure injection (loss, link filters, duplication, latency spikes)
// is drawn at transmit time, BEFORE any bytes exist: a "lost" frame is
// simply never written, which keeps the conformance suite's schedule-
// independent attempt counts exact on sockets.  The latency model is
// honoured by delaying each frame's enqueue-to-socket instant; kernel
// transit adds its real microseconds on top.
//
// Threading contract: identical to ThreadTransport -- one driving
// thread calls send()/draft()/schedule()/run_*, the sink and abandon
// handler run only on that driving thread from inside run_*, and all
// shared state sits behind one mutex that the I/O thread holds only for
// the microseconds an event takes to classify.  NOT deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "net/socket.hpp"
#include "protocol/transport.hpp"

namespace voronet::net {

struct SocketTransportConfig {
  /// Listen address spec ("uds:/path" / "tcp:host:port"); empty picks a
  /// fresh Unix-domain path under $TMPDIR.
  std::string listen;
  /// Peer address specs; empty means loopback (one peer: ourselves).
  std::vector<std::string> peers;
  /// run_to_idle's wall-clock cap before budget_exhausted.
  double patience = 60.0;
  /// Reconnect backoff: attempt k waits min(base * 2^(k-1), cap).
  double reconnect_base = 0.01;
  double reconnect_cap = 2.0;
};

class SocketTransport final : public protocol::Transport {
 public:
  using NetworkConfig = protocol::NetworkConfig;
  using NetworkStats = protocol::NetworkStats;
  using Message = protocol::Message;
  using NodeId = protocol::NodeId;
  using ViewEntry = protocol::ViewEntry;

  /// Binds, spawns the I/O thread, and starts connecting.  Throws
  /// std::runtime_error when the listen address cannot be bound (that is
  /// a configuration error, unlike peer connects, which retry forever).
  explicit SocketTransport(const NetworkConfig& config,
                           SocketTransportConfig socket_config = {});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  void set_sink(Sink sink) override { sink_ = std::move(sink); }
  void set_abandon_handler(AbandonHandler handler) override {
    abandon_ = std::move(handler);
  }

  [[nodiscard]] Message draft(std::size_t reserve_entries = 0) override;
  void send(Message msg) override;

  void crash(NodeId node) override;
  void revive(NodeId node) override;
  [[nodiscard]] bool crashed(NodeId node) const override;

  void stall(NodeId node) override;
  void resume(NodeId node) override;
  void resume_all() override;
  [[nodiscard]] bool stalled(NodeId node) const override;

  void begin_loss_burst(double extra_drop) override;
  void end_loss_burst(double extra_drop) override;
  void begin_latency_spike(double factor) override;
  void end_latency_spike(double factor) override;
  void begin_duplication(double probability) override;
  void end_duplication(double probability) override;

  void set_link_filter(LinkFilter up) override;
  void clear_link_filter() override;

  [[nodiscard]] double now() const override;
  void schedule(double delay, Task fn) override;
  RunResult run_to_idle(std::size_t max_events) override;
  RunResult run_until(double horizon) override;

  [[nodiscard]] std::size_t in_flight() const override;
  [[nodiscard]] std::size_t stalled_backlog() const override;
  [[nodiscard]] std::size_t dedup_entries() const override;
  [[nodiscard]] std::size_t dedup_window_size() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;

  [[nodiscard]] sim::Metrics& metrics() override { return metrics_; }
  [[nodiscard]] const sim::Metrics& metrics() const override {
    return metrics_;
  }
  [[nodiscard]] const NetworkStats& stats() const override { return stats_; }
  [[nodiscard]] const NetworkConfig& config() const override {
    return config_;
  }
  [[nodiscard]] double retransmit_timeout() const override { return rto_; }

  void set_tracer(obs::Tracer*) override {}  // inert, like ThreadTransport
  void set_recorder(obs::FlightRecorder*) override {}

  [[nodiscard]] bool deterministic() const override { return false; }
  [[nodiscard]] const char* backend_name() const override { return "socket"; }

  /// The bound listen address (resolved: TCP port 0 becomes the kernel's
  /// pick), for handing to a peer process.
  [[nodiscard]] const Address& listen_address() const { return listen_addr_; }

 private:
  // Reliable-transfer state: ThreadTransport's structures, verbatim.
  struct Transfer {
    Message msg;
    std::uint64_t id = 0;  ///< 0 = free slot
    std::size_t attempts = 1;
    bool delivered = false;
    bool settled = false;
  };

  struct OrphanWindow {
    struct Rec {
      std::uint64_t transfer_id = 0;
      NodeId dst = protocol::kNoNode;
    };
    std::vector<Rec> ring;
    std::size_t next = 0;
    std::size_t count = 0;

    [[nodiscard]] bool empty() const { return count == 0; }
    [[nodiscard]] std::size_t size() const { return count; }
    bool insert(std::uint64_t transfer_id, NodeId dst);
    void erase(std::uint64_t transfer_id);
    void erase_dst(NodeId dst);
  };

  /// A timed event for the I/O thread: an encoded frame to enqueue on a
  /// peer connection at its latency deadline, a retransmit timer, or a
  /// (re)connect attempt.
  struct NetEvent {
    double at = 0.0;
    std::uint64_t seq = 0;
    enum Kind : std::uint8_t { kWrite, kRetransmit, kConnect } kind = kWrite;
    std::size_t peer = 0;             ///< kWrite / kConnect
    std::vector<std::uint8_t> frame;  ///< kWrite payload
    std::uint32_t slot = 0;           ///< kRetransmit
    std::uint64_t transfer = 0;       ///< kRetransmit generation check
  };

  /// One outbound peer connection (I/O thread only, except `addr`).
  struct Peer {
    Address addr;
    int fd = -1;
    bool connecting = false;
    std::deque<std::vector<std::uint8_t>> outq;  ///< frames awaiting write
    std::size_t out_off = 0;  ///< bytes of outq.front() already written
    std::size_t attempts = 0;  ///< connects since last success
  };

  /// One accepted inbound connection (I/O thread only).
  struct Inbound {
    int fd = -1;
    std::vector<std::uint8_t> buf;  ///< reassembly buffer
    std::size_t off = 0;            ///< consumed prefix of buf
  };

  struct Upcall {
    enum Kind : std::uint8_t { kDeliver, kAbandon } kind = kDeliver;
    Message msg;
  };

  struct DriverTimer {
    double at = 0.0;
    std::uint64_t seq = 0;
    Task fn;
  };

  // --- I/O thread ----------------------------------------------------------
  void io_loop();
  void post(NetEvent ev);
  void wake_io();
  void process_due(NetEvent& ev);
  void try_connect(std::size_t peer_index);
  void peer_down(Peer& peer, std::size_t peer_index);
  void flush_peer(Peer& peer, std::size_t peer_index);
  void read_inbound(Inbound& conn);
  void process_arrival(Message msg);

  // All *_locked helpers require g_ held.
  void transmit_locked(const Message& msg);
  void enqueue_frame_locked(const Message& msg, double delay);
  void receive_locked(Message msg);
  void settle_locked(std::uint32_t slot, std::uint64_t transfer_id);
  void retransmit_locked(std::uint32_t slot, std::uint64_t transfer_id);
  [[nodiscard]] Transfer* live_transfer_locked(std::uint32_t slot,
                                               std::uint64_t transfer_id);
  std::uint32_t alloc_slot_locked();
  void free_slot_locked(std::uint32_t slot);
  void recycle_payload_locked(std::vector<ViewEntry>&& entries);
  void recycle_frame(std::vector<std::uint8_t>&& frame);
  [[nodiscard]] double backoff_timeout(std::uint64_t transfer_id,
                                       std::size_t attempts) const;
  [[nodiscard]] double effective_drop_locked() const;
  [[nodiscard]] bool flag_locked(const std::vector<std::uint8_t>& flags,
                                 NodeId node) const;
  static void set_flag(std::vector<std::uint8_t>& flags, NodeId node, bool on);
  void push_upcall(Upcall up);
  std::size_t pump();
  [[nodiscard]] bool quiescent() const;

  NetworkConfig config_;
  SocketTransportConfig socket_config_;
  double rto_ = 0.0;
  double rto_cap_ = 0.0;
  std::chrono::steady_clock::time_point start_;

  Sink sink_;
  AbandonHandler abandon_;

  // --- Shared transport state (behind g_) ----------------------------------
  mutable std::mutex g_;
  Rng rng_;
  sim::Metrics metrics_;
  NetworkStats stats_;
  std::uint64_t next_transfer_ = 1;
  std::deque<Transfer> transfers_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t in_flight_ = 0;
  OrphanWindow orphans_;
  std::vector<std::vector<ViewEntry>> payload_pool_;
  std::vector<std::vector<std::uint8_t>> frame_pool_;
  std::vector<std::uint8_t> crashed_;
  std::vector<std::uint8_t> stalled_;
  std::vector<std::vector<Message>> stall_backlog_;
  std::size_t backlog_count_ = 0;
  std::vector<double> loss_bursts_;
  std::vector<double> latency_spikes_;
  std::vector<double> duplications_;
  LinkFilter link_up_;
  /// Frames scheduled (or queued / in the kernel) but not yet decoded and
  /// classified on arrival -- the wire half of the quiescence probe.
  std::atomic<std::uint64_t> wire_pending_{0};
  std::atomic<std::uint64_t> event_seq_{0};

  // --- I/O side ------------------------------------------------------------
  Address listen_addr_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;  ///< self-pipe: poll() wakeup from post()/dtor
  int wake_wr_ = -1;
  std::vector<Peer> peers_;
  std::vector<Inbound> inbound_;
  std::mutex io_m_;  ///< guards inbox_/stop_ (never held with g_ wanted)
  std::vector<NetEvent> inbox_;
  bool stop_ = false;
  std::vector<NetEvent> heap_;  ///< (at, seq) min-heap, I/O thread only
  std::thread io_thread_;

  // --- Driver side ---------------------------------------------------------
  mutable std::mutex up_m_;
  std::condition_variable up_cv_;
  std::deque<Upcall> upcalls_;
  std::vector<DriverTimer> timers_;  ///< min-heap; driver thread only
  std::uint64_t timer_seq_ = 0;
};

}  // namespace voronet::net
