// Thin POSIX socket helpers for the net subsystem: address parsing and
// nonblocking listen/connect/accept.
//
// Two address families, one textual spec format:
//
//   "uds:/path/to.sock"    Unix-domain stream socket
//   "tcp:127.0.0.1:7447"   TCP (numeric IPv4 host, or "localhost")
//
// Everything here is nonblocking from birth: the event loop in
// SocketTransport and the serving layer never wants a blocking fd, and
// handing one out by accident is the classic way a transport wedges.
// Failures are reported by return value + errno-derived message, not
// exceptions -- connect failures are routine (the peer process is still
// starting) and handled by backoff, not stack unwinding.
#pragma once

#include <cstdint>
#include <string>

namespace voronet::net {

struct Address {
  enum class Family : std::uint8_t { kUnix, kTcp };
  Family family = Family::kUnix;
  std::string path;  ///< kUnix: filesystem path of the socket
  std::string host;  ///< kTcp: numeric IPv4 (or "localhost")
  std::uint16_t port = 0;

  [[nodiscard]] std::string spec() const;
};

/// Parse "uds:..." / "tcp:host:port".  Returns false (with a message in
/// `err`) on malformed specs; never throws.
[[nodiscard]] bool parse_address(const std::string& spec, Address& out,
                                 std::string& err);

/// A fresh Unix-domain path under $TMPDIR, unique within this host
/// (pid + process-wide counter) -- the default listen address when the
/// caller does not care where the socket lives.
[[nodiscard]] std::string unique_uds_path();

/// Bind + listen, nonblocking.  On success returns the fd and writes the
/// *resolved* address to `resolved` (TCP port 0 becomes the kernel's
/// ephemeral choice; UDS paths are unlinked first so rebinding a stale
/// path works).  Returns -1 with `err` set on failure.
[[nodiscard]] int open_listener(const Address& addr, Address& resolved,
                                std::string& err);

/// Begin a nonblocking connect.  Returns the fd (with `in_progress` true
/// when the kernel reported EINPROGRESS -- poll for POLLOUT and call
/// finish_connect), or -1 with `err` set on immediate failure.
[[nodiscard]] int start_connect(const Address& addr, bool& in_progress,
                                std::string& err);

/// Resolve a poll-signalled nonblocking connect: 0 on success, else the
/// (positive) errno of the failure.
[[nodiscard]] int finish_connect(int fd);

/// Accept one pending connection, nonblocking + TCP_NODELAY where it
/// applies.  Returns -1 when none is pending (EAGAIN) or on error.
[[nodiscard]] int accept_conn(int listen_fd);

/// O_NONBLOCK on an inherited fd; returns false on fcntl failure.
bool set_nonblocking(int fd);

}  // namespace voronet::net
