#include "net/serve_client.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "common/rng.hpp"
#include "net/socket.hpp"
#include "serve/open_loop.hpp"
#include "voronet/queries.hpp"

namespace voronet::net {

namespace {

constexpr std::size_t kReadChunk = std::size_t{1} << 16;
constexpr std::size_t kCompactThreshold = std::size_t{1} << 16;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

ServeClient::ServeClient(const std::string& spec, double connect_timeout) {
  Address addr;
  std::string err;
  if (!parse_address(spec, addr, err)) {
    throw std::runtime_error("serve client: bad address: " + err);
  }
  const auto t0 = Clock::now();
  // The server process may still be growing its overlay: retry the
  // connect until the deadline, then give up loudly.
  while (fd_ < 0) {
    bool in_progress = false;
    int fd = start_connect(addr, in_progress, err);
    if (fd >= 0 && in_progress) {
      pollfd pfd{fd, POLLOUT, 0};
      while (seconds_since(t0) < connect_timeout) {
        if (::poll(&pfd, 1, 50) > 0) break;
      }
      const int connect_errno = finish_connect(fd);
      if (connect_errno != 0) {
        ::close(fd);
        fd = -1;
      }
    }
    if (fd >= 0) {
      fd_ = fd;
      break;
    }
    if (seconds_since(t0) >= connect_timeout) {
      throw std::runtime_error("serve client: connect to " + addr.spec() +
                               " timed out");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  ServeFrame hello;
  hello.kind = ServeKind::kHello;
  hello.id = next_request_id();
  send_frame(hello);
  ServeFrame ack;
  if (!pump(connect_timeout, ServeKind::kHelloAck, &ack, nullptr)) {
    throw std::runtime_error("serve client: hello handshake timed out");
  }
  objects_ = ack.objects;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t ServeClient::next_request_id() { return next_id_++; }

std::uint64_t ServeClient::submit_radius(Vec2 centre, double radius) {
  ServeFrame f;
  f.kind = ServeKind::kSubmitRadius;
  f.id = next_request_id();
  f.a = centre;
  f.tol = radius;
  send_frame(f);
  ++outstanding_;
  return f.id;
}

std::uint64_t ServeClient::submit_range(Vec2 a, Vec2 b, double tol) {
  ServeFrame f;
  f.kind = ServeKind::kSubmitRange;
  f.id = next_request_id();
  f.a = a;
  f.b = b;
  f.tol = tol;
  send_frame(f);
  ++outstanding_;
  return f.id;
}

std::size_t ServeClient::poll_answers(double timeout_s) {
  std::size_t answers = 0;
  // Waiting "for" kAnswer: pump returns true on the first one; keep the
  // count from the dispatch path instead and swallow the timeout.
  pump(timeout_s, ServeKind::kAnswer, nullptr, &answers);
  return answers;
}

ServeFrame ServeClient::get_report(double timeout_s) {
  ServeFrame req;
  req.kind = ServeKind::kGetReport;
  req.id = next_request_id();
  send_frame(req);
  ServeFrame reply;
  if (!pump(timeout_s, ServeKind::kReport, &reply, nullptr)) {
    throw std::runtime_error("serve client: report request timed out");
  }
  return reply;
}

void ServeClient::shutdown_server() {
  ServeFrame f;
  f.kind = ServeKind::kShutdown;
  f.id = next_request_id();
  send_frame(f);
}

void ServeClient::send_frame(const ServeFrame& frame) {
  out_.clear();
  encode_serve_frame(frame, out_);
  std::size_t off = 0;
  while (off < out_.size()) {
    const ssize_t put = ::write(fd_, out_.data() + off, out_.size() - off);
    if (put > 0) {
      off += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      if (::poll(&pfd, 1, 1000) <= 0) continue;  // deadline-free: tiny frames
      continue;
    }
    throw std::runtime_error("serve client: connection lost on write");
  }
}

bool ServeClient::pump(double timeout_s, ServeKind wait_for, ServeFrame* reply,
                       std::size_t* answers) {
  const auto t0 = Clock::now();
  for (;;) {
    // Dispatch everything already buffered before touching the socket.
    for (;;) {
      ServeFrame frame;
      std::size_t consumed = 0;
      std::string diag;
      const DecodeStatus st = decode_serve_frame(
          in_.data() + in_off_, in_.size() - in_off_, consumed, frame, &diag);
      if (st == DecodeStatus::kNeedMore) break;
      if (st != DecodeStatus::kOk) {
        throw std::runtime_error(std::string("serve client: corrupt stream: ") +
                                 decode_status_name(st) + " (" + diag + ")");
      }
      in_off_ += consumed;
      if (in_off_ == in_.size()) {
        in_.clear();
        in_off_ = 0;
      } else if (in_off_ >= kCompactThreshold) {
        in_.erase(in_.begin(), in_.begin() + static_cast<std::ptrdiff_t>(in_off_));
        in_off_ = 0;
      }
      if (frame.kind == ServeKind::kAnswer) {
        if (outstanding_ > 0) --outstanding_;
        if (answers != nullptr) ++*answers;
        if (on_answer_) on_answer_(frame);
        if (wait_for == ServeKind::kAnswer) return true;
        continue;
      }
      if (frame.kind == wait_for) {
        if (reply != nullptr) *reply = frame;
        return true;
      }
      throw std::runtime_error(std::string("serve client: unexpected ") +
                               serve_kind_name(frame.kind) + " frame");
    }

    const double remaining = timeout_s - seconds_since(t0);
    if (remaining <= 0.0) return false;
    pollfd pfd{fd_, POLLIN, 0};
    const int timeout_ms =
        std::max(1, static_cast<int>(std::min(remaining, 0.1) * 1000.0));
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n <= 0) continue;
    for (;;) {
      const std::size_t old = in_.size();
      in_.resize(old + kReadChunk);
      const ssize_t got = ::read(fd_, in_.data() + old, kReadChunk);
      if (got > 0) {
        in_.resize(old + static_cast<std::size_t>(got));
        if (static_cast<std::size_t>(got) < kReadChunk) break;
        continue;
      }
      in_.resize(old);
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      throw std::runtime_error("serve client: server closed the connection");
    }
  }
}

// ---------------------------------------------------------------------------
// Workload drivers
// ---------------------------------------------------------------------------

serve::LoadReport run_open_loop_remote(ServeClient& client,
                                       const serve::LoadConfig& config,
                                       ServeFrame* server_report) {
  if (config.rate <= 0.0 || config.duration <= 0.0) {
    throw std::runtime_error("open loop remote: non-positive rate/duration");
  }
  Rng rng(config.seed);
  const Vec2 hotspot{rng.uniform(0.25, 0.75), rng.uniform(0.25, 0.75)};

  // The identical draw sequence as serve::run_open_loop, so a remote
  // cell offers the same arrival process as an in-process one.
  struct Arrival {
    double t = 0.0;
    bool range = false;
    Vec2 a, b;
    double tol = 0.0;
  };
  std::vector<Arrival> arrivals;
  for (double t = rng.exponential(config.rate); t < config.duration;
       t += rng.exponential(config.rate)) {
    const bool hot = rng.chance(config.hotspot_fraction);
    const bool range = rng.chance(config.range_fraction);
    const Vec2 base = hot ? hotspot
                          : Vec2{rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)};
    Arrival a;
    a.t = t;
    a.range = range;
    a.a = {base.x + rng.uniform(-0.02, 0.02),
           base.y + rng.uniform(-0.02, 0.02)};
    if (range) {
      a.b = {a.a.x + rng.uniform(-0.1, 0.1), a.a.y + rng.uniform(-0.1, 0.1)};
      a.tol = config.range_tol;
    } else {
      a.tol = config.radius;
    }
    arrivals.push_back(a);
  }

  std::unordered_map<std::uint64_t, double> sent_at;
  std::vector<double> latencies;
  const auto start = Clock::now();
  client.set_answer_handler([&](const ServeFrame& answer) {
    const auto it = sent_at.find(answer.id);
    if (it == sent_at.end() || answer.rejected) return;
    latencies.push_back(seconds_since(start) - it->second);
  });

  for (const Arrival& a : arrivals) {
    // Pace on the wall clock, draining answers while we wait -- arrivals
    // never block on responses (the open-loop discipline).
    for (;;) {
      const double wait = a.t - seconds_since(start);
      if (wait <= 0.0) break;
      client.poll_answers(std::min(wait, 0.05));
    }
    const std::uint64_t id =
        a.range ? client.submit_range(a.a, a.b, a.tol)
                : client.submit_radius(a.a, a.tol);
    sent_at[id] = seconds_since(start);
  }

  // Drain: every submitted query is owed exactly one answer.
  const double patience = 60.0;
  const auto drain0 = Clock::now();
  while (client.outstanding() > 0 && seconds_since(drain0) < patience) {
    client.poll_answers(0.1);
  }
  client.set_answer_handler(nullptr);

  const ServeFrame rf = client.get_report();
  if (server_report != nullptr) *server_report = rf;

  serve::LoadReport report;
  report.offered = arrivals.size();
  report.admitted = rf.admitted;
  report.rejected = rf.rejected_total;
  report.completed = rf.completed;
  report.cache_hits = rf.cache_hits;
  report.batches = rf.batches;
  report.mean_batch = rf.batches == 0
                          ? 0.0
                          : static_cast<double>(rf.batch_members) /
                                static_cast<double>(rf.batches);
  report.completion_rate =
      report.offered == 0 ? 1.0
                          : static_cast<double>(report.completed) /
                                static_cast<double>(report.offered);
  report.drained = rf.drained && client.outstanding() == 0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.p50 = percentile(latencies, 0.50);
    report.p99 = percentile(latencies, 0.99);
    report.max_latency = latencies.back();
    double sum = 0.0;
    for (const double l : latencies) sum += l;
    report.mean_latency = sum / static_cast<double>(latencies.size());
  }
  report.graded = rf.graded;
  report.recall = rf.recall;
  report.precision = rf.precision;
  return report;
}

std::size_t drive_query_stream(ServeClient& client,
                               const scenario::Event& event,
                               std::uint64_t seed) {
  using scenario::EventKind;
  using scenario::QueryMix;
  using scenario::Spread;
  Rng rng(seed);

  struct Op {
    double t = 0.0;
    bool range = false;
  };
  std::vector<Op> ops;
  switch (event.kind) {
    case EventKind::kRangeQuery:
      ops.push_back(Op{0.0, true});
      break;
    case EventKind::kRadiusQuery:
      ops.push_back(Op{0.0, false});
      break;
    case EventKind::kQueryStream: {
      const auto flavour = [&](std::size_t i) {
        switch (event.mix) {
          case QueryMix::kRange:
            return true;
          case QueryMix::kRadius:
            return false;
          case QueryMix::kMixed:
            return i % 2 == 0;
        }
        return false;
      };
      if (event.spread == Spread::kPoisson) {
        std::size_t i = 0;
        for (double t = rng.exponential(event.rate); t < event.duration;
             t += rng.exponential(event.rate)) {
          ops.push_back(Op{t, flavour(i++)});
        }
      } else {
        for (std::size_t i = 0; i < event.count; ++i) {
          const double t =
              event.spread == Spread::kUniform
                  ? rng.uniform(0.0, event.duration)
                  : event.duration * static_cast<double>(i) /
                        static_cast<double>(std::max<std::size_t>(
                            event.count, 1));
          ops.push_back(Op{t, flavour(i)});
        }
        std::sort(ops.begin(), ops.end(),
                  [](const Op& x, const Op& y) { return x.t < y.t; });
      }
      break;
    }
    default:
      throw std::runtime_error(
          "drive_query_stream: event is not a query event");
  }

  const std::size_t population =
      std::max<std::size_t>(client.objects(), 2);
  const auto start = Clock::now();
  for (const Op& op : ops) {
    for (;;) {
      const double wait = op.t - seconds_since(start);
      if (wait <= 0.0) break;
      client.poll_answers(std::min(wait, 0.05));
    }
    if (event.has_spec) {
      if (op.range) {
        client.submit_range(event.a, event.b, event.tol);
      } else {
        client.submit_radius(event.a, event.tol);
      }
    } else if (op.range) {
      const QueryGeometry g = draw_range_geometry(rng, population);
      client.submit_range(g.a, g.b, g.tol);
    } else {
      const QueryGeometry g = draw_radius_geometry(rng, population);
      client.submit_radius(g.a, g.tol);
    }
  }
  return ops.size();
}

}  // namespace voronet::net
