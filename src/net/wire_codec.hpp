// Binary codec for protocol::Message frames (wire format v1).
//
// encode_frame appends one complete frame -- length prefix + body -- to a
// byte buffer; decode_frame extracts one frame from the front of a
// reassembly buffer, tolerating partial reads (kNeedMore) and rejecting
// corrupt input with a diagnostic instead of interpreting it.  The codec
// is the ONLY code that touches the byte layout; wire_format.hpp holds
// the layout arithmetic so accounting-only consumers need not link the
// codec.
//
// Allocation discipline: encode writes into a caller-owned buffer that
// the socket layer reuses per connection, and decode fills a
// caller-provided Message whose `entries` vector the caller drafts from
// the transport's retired-payload pool -- steady-state socket traffic
// allocates nothing on either side once buffers have grown to the
// working set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire_format.hpp"
#include "protocol/message.hpp"

namespace voronet::net {

enum class DecodeStatus : std::uint8_t {
  kOk,          ///< one frame consumed, `out` is valid
  kNeedMore,    ///< buffer holds a prefix of a frame; read more bytes
  kBadMagic,    ///< body does not start with kWireMagic
  kBadVersion,  ///< wire_version != kWireVersion
  kBadKind,     ///< type byte / query-kind byte out of enum range
  kBadLength,   ///< declared length corrupt (overlong or inconsistent)
};

[[nodiscard]] const char* decode_status_name(DecodeStatus s);

/// Append one frame for `msg` to `out` (existing contents preserved).
void encode_frame(const protocol::Message& msg, std::vector<std::uint8_t>& out);

/// Try to decode one frame from data[0, size).
///
/// On kOk, `consumed` is the total frame size and `out` holds the message
/// (out.entries is cleared then filled -- pass a pooled vector to avoid
/// churn).  On kNeedMore nothing is consumed.  On any error, `consumed`
/// is 0 and `diag` (when non-null) receives a one-line diagnostic naming
/// the offending field and value; the caller must drop the connection --
/// a stream with a corrupt frame has no resynchronization point.
DecodeStatus decode_frame(const std::uint8_t* data, std::size_t size,
                          std::size_t& consumed, protocol::Message& out,
                          std::string* diag = nullptr);

}  // namespace voronet::net
