#include "net/serve_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "protocol/flat_map.hpp"
#include "voronet/queries.hpp"

namespace voronet::net {

namespace {

/// Reclaim a reassembly buffer's consumed prefix once it dominates the
/// buffer (same policy as SocketTransport's inbound path).
constexpr std::size_t kCompactThreshold = std::size_t{1} << 16;
constexpr std::size_t kReadChunk = std::size_t{1} << 16;

}  // namespace

ServedShard::ServedShard(const ServedConfig& config) : config_(config) {
  protocol::HarnessConfig hc;
  hc.transport = config.backend;
  hc.transport_shards = config.shards;
  hc.transport_listen = config.transport_listen;
  hc.seed = config.seed;
  // Short wires, like bench_serve's cells: on the thread and socket
  // backends these are wall-clock seconds, and a shard should answer in
  // milliseconds, not simulated-WAN seconds.
  hc.network.latency =
      protocol::LatencyModel::uniform(config.latency_low, config.latency_high);
  hc.network.seed = config.seed ^ 0x77aabULL;
  hc.failure_detect_delay = config.failure_detect_delay;

  query_harness_ = std::make_unique<protocol::QueryHarness>(hc);
  query_harness_->populate(config.objects, config.seed ^ 0x9e37ULL, 0.002);
  server_ = std::make_unique<serve::QueryServer>(query_harness_->harness(),
                                                 config.serve);

  Address want;
  std::string err;
  const std::string spec =
      config.listen.empty() ? "uds:" + unique_uds_path() : config.listen;
  if (!parse_address(spec, want, err)) {
    throw std::runtime_error("served: bad listen spec: " + err);
  }
  listen_fd_ = open_listener(want, addr_, err);
  if (listen_fd_ < 0) {
    throw std::runtime_error("served: listen failed: " + err);
  }
}

ServedShard::~ServedShard() {
  for (Client& c : clients_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (addr_.family == Address::Family::kUnix) {
    ::unlink(addr_.path.c_str());
  }
}

std::uint64_t ServedShard::serve() {
  protocol::ProtocolHarness& harness = query_harness_->harness();
  while (!stop_.load(std::memory_order_relaxed)) {
    // One short poll pass over the client-facing sockets...
    std::vector<pollfd> pfds;
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Client& c : clients_) {
      short events = POLLIN;
      if (c.out.size() > c.out_off) events |= POLLOUT;
      pfds.push_back(pollfd{c.fd, events, 0});
    }
    const int n = ::poll(pfds.data(), pfds.size(), /*timeout_ms=*/1);
    if (n > 0) {
      if ((pfds[0].revents & POLLIN) != 0) accept_clients();
      for (std::size_t i = 0; i < clients_.size(); ++i) {
        Client& c = clients_[i];
        const short re = pfds[i + 1].revents;
        bool alive = true;
        if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0 && (re & POLLIN) == 0) {
          alive = false;
        }
        if (alive && (re & POLLIN) != 0) alive = read_client(c);
        if (alive && (re & POLLOUT) != 0) alive = flush_client(c);
        if (!alive) {
          ::close(c.fd);
          c.fd = -1;
        }
      }
      std::erase_if(clients_, [](const Client& c) { return c.fd < 0; });
    }
    // ... then one drive slice of the harness (protocol upcalls, batch
    // timers, flood completions all run here, on this thread) ...
    harness.run_until(harness.network().now() + config_.slice);
    // ... then ship every answer that slice produced.
    sweep_answers();
    for (Client& c : clients_) {
      if (!flush_client(c)) {
        ::close(c.fd);
        c.fd = -1;
      }
    }
    std::erase_if(clients_, [](const Client& c) { return c.fd < 0; });
  }
  return answered_;
}

void ServedShard::accept_clients() {
  for (;;) {
    const int fd = accept_conn(listen_fd_);
    if (fd < 0) break;
    Client c;
    c.fd = fd;
    c.serial = next_serial_++;
    clients_.push_back(std::move(c));
  }
}

bool ServedShard::read_client(Client& client) {
  bool closed = false;
  for (;;) {
    const std::size_t old = client.in.size();
    client.in.resize(old + kReadChunk);
    const ssize_t got = ::read(client.fd, client.in.data() + old, kReadChunk);
    if (got > 0) {
      client.in.resize(old + static_cast<std::size_t>(got));
      if (static_cast<std::size_t>(got) < kReadChunk) break;
      continue;
    }
    client.in.resize(old);
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    closed = true;  // EOF or hard error
    break;
  }
  for (;;) {
    ServeFrame frame;
    std::size_t consumed = 0;
    std::string diag;
    const DecodeStatus st =
        decode_serve_frame(client.in.data() + client.in_off,
                           client.in.size() - client.in_off, consumed, frame,
                           &diag);
    if (st == DecodeStatus::kNeedMore) break;
    if (st != DecodeStatus::kOk) {
      std::fprintf(stderr, "served: dropping client %llu: %s (%s)\n",
                   static_cast<unsigned long long>(client.serial),
                   decode_status_name(st), diag.c_str());
      return false;
    }
    client.in_off += consumed;
    if (!handle_frame(client, frame)) return false;
  }
  if (client.in_off == client.in.size()) {
    client.in.clear();
    client.in_off = 0;
  } else if (client.in_off >= kCompactThreshold) {
    client.in.erase(client.in.begin(),
                    client.in.begin() +
                        static_cast<std::ptrdiff_t>(client.in_off));
    client.in_off = 0;
  }
  // EOF means the client is gone: answers still pending for it are
  // swept to a dead serial and silently dropped (find_client misses).
  return !closed;
}

bool ServedShard::handle_frame(Client& client, const ServeFrame& frame) {
  switch (frame.kind) {
    case ServeKind::kHello: {
      ServeFrame ack;
      ack.kind = ServeKind::kHelloAck;
      ack.id = frame.id;
      ack.objects = query_harness_->harness().node_count();
      ack.topology_version = query_harness_->harness().topology_version();
      send_frame(client, ack);
      return true;
    }
    case ServeKind::kSubmitRadius:
    case ServeKind::kSubmitRange: {
      const serve::QueryServer::TicketId ticket =
          frame.kind == ServeKind::kSubmitRadius
              ? server_->submit_radius(frame.a, frame.tol)
              : server_->submit_range(frame.a, frame.b, frame.tol);
      all_tickets_.push_back(ticket);
      pending_.push_back(PendingAnswer{ticket, client.serial, frame.id});
      return true;
    }
    case ServeKind::kGetReport:
      send_frame(client, build_report(frame.id));
      return true;
    case ServeKind::kShutdown:
      stop();
      return true;
    case ServeKind::kHelloAck:
    case ServeKind::kAnswer:
    case ServeKind::kReport:
      std::fprintf(stderr,
                   "served: dropping client %llu: unexpected %s frame\n",
                   static_cast<unsigned long long>(client.serial),
                   serve_kind_name(frame.kind));
      return false;
  }
  return false;
}

void ServedShard::sweep_answers() {
  for (std::size_t i = 0; i < pending_.size();) {
    const PendingAnswer& p = pending_[i];
    const serve::QueryServer::Ticket& t = server_->ticket(p.ticket);
    if (!t.done) {
      ++i;
      continue;
    }
    if (Client* client = find_client(p.client_serial); client != nullptr) {
      ServeFrame a;
      a.kind = ServeKind::kAnswer;
      a.id = p.request_id;
      a.rejected = t.rejected;
      a.cache_hit = t.cache_hit;
      a.topology_version = t.completed_version;
      a.server_latency = t.rejected ? 0.0 : t.latency();
      a.matches.assign(t.matches.begin(), t.matches.end());
      send_frame(*client, a);
    }
    ++answered_;
    pending_[i] = pending_.back();
    pending_.pop_back();
  }
}

void ServedShard::send_frame(Client& client, const ServeFrame& frame) {
  encode_serve_frame(frame, client.out);
}

bool ServedShard::flush_client(Client& client) {
  while (client.out_off < client.out.size()) {
    const ssize_t put = ::write(client.fd, client.out.data() + client.out_off,
                                client.out.size() - client.out_off);
    if (put > 0) {
      client.out_off += static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  client.out.clear();
  client.out_off = 0;
  return true;
}

ServedShard::Client* ServedShard::find_client(std::uint64_t serial) {
  for (Client& c : clients_) {
    if (c.serial == serial) return &c;
  }
  return nullptr;
}

ServeFrame ServedShard::build_report(std::uint64_t request_id) {
  protocol::ProtocolHarness& harness = query_harness_->harness();
  const auto run = harness.run_to_idle();
  drained_ = !run.budget_exhausted;
  sweep_answers();  // the drain may have completed outstanding tickets

  ServeFrame r;
  r.kind = ServeKind::kReport;
  r.id = request_id;
  const serve::ServeStats& stats = server_->stats();
  r.submitted = stats.submitted;
  r.admitted = stats.admitted;
  r.rejected_total = stats.rejected;
  r.completed = stats.completed;
  r.cache_hits = stats.cache_hits;
  r.batches = stats.batches;
  r.batch_members = stats.batch_members;
  r.objects = harness.node_count();
  r.topology_version = harness.topology_version();
  r.drained = drained_;
  r.wire_bytes = harness.network().stats().wire_bytes;

  // Grade exactly as serve::run_open_loop does: every ticket completed
  // at the FINAL topology version against a roster scan through the one
  // site predicate.
  const std::uint64_t final_version = harness.topology_version();
  const std::vector<protocol::NodeId>& roster = harness.roster();
  protocol::FlatNodeMap<char> marks;
  std::uint64_t truth_total = 0, hit_total = 0, match_total = 0;
  for (const auto id : all_tickets_) {
    const serve::QueryServer::Ticket& t = server_->ticket(id);
    if (!t.done || t.rejected || t.completed_version != final_version) {
      continue;
    }
    ++r.graded;
    match_total += t.matches.size();
    marks.clear();
    marks.reserve(roster.size());
    for (const protocol::NodeId m : t.matches) marks.insert(m, 1);
    for (const protocol::NodeId n : roster) {
      if (site_within_tolerance(t.spec.a, t.spec.b, harness.node(n).position(),
                                t.spec.tol)) {
        ++truth_total;
        if (marks.find(n) != nullptr) ++hit_total;
      }
    }
  }
  r.recall = truth_total == 0 ? 1.0
                              : static_cast<double>(hit_total) /
                                    static_cast<double>(truth_total);
  r.precision = match_total == 0 ? 1.0
                                 : static_cast<double>(hit_total) /
                                       static_cast<double>(match_total);
  return r;
}

}  // namespace voronet::net
