#include "net/serve_wire.hpp"

#include "net/wire_io.hpp"

namespace voronet::net {

using wire::Cursor;
using wire::put_f64;
using wire::put_i32;
using wire::put_u16;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;

namespace {

/// Payload bytes that follow the serve header, per kind.  kAnswer's is
/// the fixed part only (the match list adds 4 + 4 * count).
constexpr std::size_t kGeometryRadiusBytes = 3 * 8;       // a.x a.y tol
constexpr std::size_t kGeometryRangeBytes = 5 * 8;        // + b.x b.y
constexpr std::size_t kAnswerFixedBytes = 1 + 1 + 8 + 8;  // flags ver lat
constexpr std::size_t kHelloAckBytes = 8 + 8;             // objects ver
constexpr std::size_t kReportBytes = 8 * 10 + 8 * 2 + 1 + 8 + 8 + 8;

std::size_t payload_size(const ServeFrame& f) {
  switch (f.kind) {
    case ServeKind::kHello:
    case ServeKind::kGetReport:
    case ServeKind::kShutdown:
      return 0;
    case ServeKind::kHelloAck:
      return kHelloAckBytes;
    case ServeKind::kSubmitRadius:
      return kGeometryRadiusBytes;
    case ServeKind::kSubmitRange:
      return kGeometryRangeBytes;
    case ServeKind::kAnswer:
      return kAnswerFixedBytes + 4 + 4 * f.matches.size();
    case ServeKind::kReport:
      return kReportBytes;
  }
  return 0;
}

}  // namespace

const char* serve_kind_name(ServeKind k) {
  switch (k) {
    case ServeKind::kHello:
      return "hello";
    case ServeKind::kHelloAck:
      return "hello_ack";
    case ServeKind::kSubmitRadius:
      return "submit_radius";
    case ServeKind::kSubmitRange:
      return "submit_range";
    case ServeKind::kAnswer:
      return "answer";
    case ServeKind::kGetReport:
      return "get_report";
    case ServeKind::kReport:
      return "report";
    case ServeKind::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

void encode_serve_frame(const ServeFrame& f, std::vector<std::uint8_t>& out) {
  const std::size_t body = kServeHeaderBytes + payload_size(f);
  out.reserve(out.size() + 4 + body);
  put_u32(out, static_cast<std::uint32_t>(body));
  put_u16(out, kServeMagic);
  put_u8(out, kServeVersion);
  put_u8(out, static_cast<std::uint8_t>(f.kind));
  put_u64(out, f.id);
  switch (f.kind) {
    case ServeKind::kHello:
    case ServeKind::kGetReport:
    case ServeKind::kShutdown:
      break;
    case ServeKind::kHelloAck:
      put_u64(out, f.objects);
      put_u64(out, f.topology_version);
      break;
    case ServeKind::kSubmitRadius:
      put_f64(out, f.a.x);
      put_f64(out, f.a.y);
      put_f64(out, f.tol);
      break;
    case ServeKind::kSubmitRange:
      put_f64(out, f.a.x);
      put_f64(out, f.a.y);
      put_f64(out, f.b.x);
      put_f64(out, f.b.y);
      put_f64(out, f.tol);
      break;
    case ServeKind::kAnswer:
      put_u8(out, f.rejected ? 1 : 0);
      put_u8(out, f.cache_hit ? 1 : 0);
      put_u64(out, f.topology_version);
      put_f64(out, f.server_latency);
      put_u32(out, static_cast<std::uint32_t>(f.matches.size()));
      for (const std::int32_t m : f.matches) put_i32(out, m);
      break;
    case ServeKind::kReport:
      put_u64(out, f.submitted);
      put_u64(out, f.admitted);
      put_u64(out, f.rejected_total);
      put_u64(out, f.completed);
      put_u64(out, f.cache_hits);
      put_u64(out, f.batches);
      put_u64(out, f.batch_members);
      put_u64(out, f.graded);
      put_u64(out, f.objects);
      put_u64(out, f.topology_version);
      put_f64(out, f.recall);
      put_f64(out, f.precision);
      put_u8(out, f.drained ? 1 : 0);
      put_u64(out, f.wire_bytes);
      put_f64(out, 0.0);  // reserved
      put_f64(out, 0.0);  // reserved
      break;
  }
}

DecodeStatus decode_serve_frame(const std::uint8_t* data, std::size_t size,
                                std::size_t& consumed, ServeFrame& out,
                                std::string* diag) {
  consumed = 0;
  if (size < 4) return DecodeStatus::kNeedMore;
  Cursor c{data};
  const std::uint32_t body = c.u32();
  if (body > kMaxServeBody) {
    if (diag != nullptr) {
      *diag = "serve frame body length " + std::to_string(body) +
              " exceeds kMaxServeBody";
    }
    return DecodeStatus::kBadLength;
  }
  if (body < kServeHeaderBytes) {
    if (diag != nullptr) {
      *diag = "serve frame body length " + std::to_string(body) +
              " shorter than the header";
    }
    return DecodeStatus::kBadLength;
  }
  if (size < 4 + body) return DecodeStatus::kNeedMore;
  const std::uint16_t magic = c.u16();
  if (magic != kServeMagic) {
    if (diag != nullptr) *diag = "bad serve magic 0x" + std::to_string(magic);
    return DecodeStatus::kBadMagic;
  }
  const std::uint8_t version = c.u8();
  if (version != kServeVersion) {
    if (diag != nullptr) {
      *diag = "unknown serve wire version " + std::to_string(version) +
              " (speaking " + std::to_string(kServeVersion) + ")";
    }
    return DecodeStatus::kBadVersion;
  }
  const std::uint8_t kind = c.u8();
  if (kind >= kServeKindCount) {
    if (diag != nullptr) {
      *diag = "serve kind byte " + std::to_string(kind) + " out of range";
    }
    return DecodeStatus::kBadKind;
  }
  out = ServeFrame{};
  out.kind = static_cast<ServeKind>(kind);
  out.id = c.u64();

  // Every kind except kAnswer has a fixed payload; check the declared
  // body against it exactly so a truncated or padded frame is rejected,
  // not silently misread.
  const auto expect_body = [&](std::size_t payload) {
    if (kServeHeaderBytes + payload != body) {
      if (diag != nullptr) {
        *diag = std::string("serve ") + serve_kind_name(out.kind) +
                " body length " + std::to_string(body) + " != expected " +
                std::to_string(kServeHeaderBytes + payload);
      }
      return false;
    }
    return true;
  };

  switch (out.kind) {
    case ServeKind::kHello:
    case ServeKind::kGetReport:
    case ServeKind::kShutdown:
      if (!expect_body(0)) return DecodeStatus::kBadLength;
      break;
    case ServeKind::kHelloAck:
      if (!expect_body(kHelloAckBytes)) return DecodeStatus::kBadLength;
      out.objects = c.u64();
      out.topology_version = c.u64();
      break;
    case ServeKind::kSubmitRadius:
      if (!expect_body(kGeometryRadiusBytes)) return DecodeStatus::kBadLength;
      out.a.x = c.f64();
      out.a.y = c.f64();
      out.tol = c.f64();
      out.b = out.a;
      break;
    case ServeKind::kSubmitRange:
      if (!expect_body(kGeometryRangeBytes)) return DecodeStatus::kBadLength;
      out.a.x = c.f64();
      out.a.y = c.f64();
      out.b.x = c.f64();
      out.b.y = c.f64();
      out.tol = c.f64();
      break;
    case ServeKind::kAnswer: {
      if (body < kServeHeaderBytes + kAnswerFixedBytes + 4) {
        if (diag != nullptr) {
          *diag = "serve answer body length " + std::to_string(body) +
                  " shorter than the fixed answer";
        }
        return DecodeStatus::kBadLength;
      }
      out.rejected = c.u8() != 0;
      out.cache_hit = c.u8() != 0;
      out.topology_version = c.u64();
      out.server_latency = c.f64();
      const std::uint32_t n = c.u32();
      if (kServeHeaderBytes + kAnswerFixedBytes + 4 +
              static_cast<std::size_t>(n) * 4 !=
          body) {
        if (diag != nullptr) {
          *diag = "serve answer match count " + std::to_string(n) +
                  " inconsistent with body length " + std::to_string(body);
        }
        return DecodeStatus::kBadLength;
      }
      out.matches.clear();
      out.matches.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) out.matches.push_back(c.i32());
      break;
    }
    case ServeKind::kReport:
      if (!expect_body(kReportBytes)) return DecodeStatus::kBadLength;
      out.submitted = c.u64();
      out.admitted = c.u64();
      out.rejected_total = c.u64();
      out.completed = c.u64();
      out.cache_hits = c.u64();
      out.batches = c.u64();
      out.batch_members = c.u64();
      out.graded = c.u64();
      out.objects = c.u64();
      out.topology_version = c.u64();
      out.recall = c.f64();
      out.precision = c.f64();
      out.drained = c.u8() != 0;
      out.wire_bytes = c.u64();
      c.f64();  // reserved
      c.f64();  // reserved
      break;
  }
  consumed = 4 + body;
  return DecodeStatus::kOk;
}

}  // namespace voronet::net
