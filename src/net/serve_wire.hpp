// RPC framing for the serving boundary (serve wire v1).
//
// This is the OTHER byte layout in src/net: wire_codec.hpp carries
// protocol::Message between overlay nodes; this codec carries client
// queries and answers between an external client process and a
// voronet_served shard.  The two are deliberately separate formats --
// the serving boundary speaks tickets and match sets, not transfers and
// view deltas -- but share the framing discipline (u32 length prefix,
// magic, version byte, kNeedMore reassembly, drop-on-corruption) and the
// little-endian primitives of wire_io.hpp.
//
// One frame:
//   u32 body_len | u16 magic "SV" | u8 version | u8 kind | u64 id | payload
//
// `id` correlates requests with replies: a kSubmit* frame's id is chosen
// by the client and echoed on its kAnswer; kHello/kGetReport round trips
// echo the request id on kHelloAck/kReport.  Payloads per kind are fixed
// except kAnswer's match list (u32 count + i32 ids).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/vec2.hpp"
#include "net/wire_codec.hpp"

namespace voronet::net {

inline constexpr std::uint16_t kServeMagic = 0x5653;  // "SV" little-endian
inline constexpr std::uint8_t kServeVersion = 1;
/// body bytes before any payload: magic + version + kind + id.
inline constexpr std::size_t kServeHeaderBytes = 2 + 1 + 1 + 8;
/// Sanity cap on a declared serve-frame body (an answer's match list is
/// bounded by the population; 1 << 24 ids is far beyond any shard).
inline constexpr std::size_t kMaxServeBody = std::size_t{1} << 26;

enum class ServeKind : std::uint8_t {
  kHello,         ///< client -> server: open the session
  kHelloAck,      ///< server -> client: shard banner (objects, version)
  kSubmitRadius,  ///< client -> server: disk query (a = centre, tol = r)
  kSubmitRange,   ///< client -> server: segment query
  kAnswer,        ///< server -> client: ticket outcome + match set
  kGetReport,     ///< client -> server: drain, grade, report
  kReport,        ///< server -> client: serving stats + exactness
  kShutdown,      ///< client -> server: stop serving after this session
};
inline constexpr std::size_t kServeKindCount = 8;

[[nodiscard]] const char* serve_kind_name(ServeKind k);

/// One serve-boundary frame; which fields are meaningful depends on
/// `kind` (unused fields keep their defaults and are not encoded).
struct ServeFrame {
  ServeKind kind = ServeKind::kHello;
  std::uint64_t id = 0;  ///< request/ticket correlation

  // kSubmitRadius / kSubmitRange geometry (radius: a = centre, tol = r).
  Vec2 a, b;
  double tol = 0.0;

  // kAnswer outcome.
  bool rejected = false;
  bool cache_hit = false;
  double server_latency = 0.0;  ///< arrival -> answer, transport clock
  std::vector<std::int32_t> matches;

  // kHelloAck / kReport shard state.
  std::uint64_t objects = 0;
  std::uint64_t topology_version = 0;

  // kReport serving stats + post-drain grading.
  std::uint64_t submitted = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected_total = 0;
  std::uint64_t completed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t batches = 0;
  std::uint64_t batch_members = 0;
  std::uint64_t graded = 0;
  double recall = 1.0;
  double precision = 1.0;
  bool drained = false;
  std::uint64_t wire_bytes = 0;  ///< overlay-internal bytes (codec-billed)
};

/// Append one frame for `f` to `out` (existing contents preserved).
void encode_serve_frame(const ServeFrame& f, std::vector<std::uint8_t>& out);

/// Try to decode one frame from data[0, size); same contract as
/// decode_frame (kNeedMore consumes nothing, errors are terminal for the
/// connection, `consumed` is set only on kOk).
DecodeStatus decode_serve_frame(const std::uint8_t* data, std::size_t size,
                                std::size_t& consumed, ServeFrame& out,
                                std::string* diag = nullptr);

}  // namespace voronet::net
