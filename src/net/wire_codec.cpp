#include "net/wire_codec.hpp"

#include "net/wire_io.hpp"

namespace voronet::net {

using wire::Cursor;
using wire::put_f64;
using wire::put_i32;
using wire::put_u16;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;

const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kNeedMore:
      return "need_more";
    case DecodeStatus::kBadMagic:
      return "bad_magic";
    case DecodeStatus::kBadVersion:
      return "bad_version";
    case DecodeStatus::kBadKind:
      return "bad_kind";
    case DecodeStatus::kBadLength:
      return "bad_length";
  }
  return "unknown";
}

void encode_frame(const protocol::Message& msg,
                  std::vector<std::uint8_t>& out) {
  const std::size_t body =
      kFixedBodyBytes + msg.entries.size() * kEntryBytes;
  out.reserve(out.size() + kFramePrefixBytes + body);
  put_u32(out, static_cast<std::uint32_t>(body));
  put_u16(out, kWireMagic);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(msg.type));
  put_i32(out, msg.src);
  put_i32(out, msg.dst);
  put_u64(out, msg.version);
  put_f64(out, msg.point.x);
  put_f64(out, msg.point.y);
  put_u32(out, msg.hops);
  put_u8(out, static_cast<std::uint8_t>(msg.query.kind));
  put_f64(out, msg.query.a.x);
  put_f64(out, msg.query.a.y);
  put_f64(out, msg.query.b.x);
  put_f64(out, msg.query.b.y);
  put_f64(out, msg.query.tol);
  put_i32(out, msg.query.issuer);
  put_u8(out, msg.query_final ? 1 : 0);
  put_u32(out, msg.epoch);
  put_u64(out, msg.transfer_id);
  put_u32(out, msg.transfer_slot);
  put_u64(out, msg.span);
  put_u32(out, static_cast<std::uint32_t>(msg.entries.size()));
  for (const protocol::ViewEntry& e : msg.entries) {
    put_i32(out, e.id);
    put_f64(out, e.pos.x);
    put_f64(out, e.pos.y);
  }
}

DecodeStatus decode_frame(const std::uint8_t* data, std::size_t size,
                          std::size_t& consumed, protocol::Message& out,
                          std::string* diag) {
  consumed = 0;
  if (size < kFramePrefixBytes) return DecodeStatus::kNeedMore;
  Cursor c{data};
  const std::uint32_t body = c.u32();
  if (body > kMaxFrameBody) {
    if (diag != nullptr) {
      *diag = "frame body length " + std::to_string(body) +
              " exceeds kMaxFrameBody";
    }
    return DecodeStatus::kBadLength;
  }
  if (body < kFixedBodyBytes) {
    if (diag != nullptr) {
      *diag = "frame body length " + std::to_string(body) +
              " shorter than the fixed header";
    }
    return DecodeStatus::kBadLength;
  }
  if (size < kFramePrefixBytes + body) return DecodeStatus::kNeedMore;
  const std::uint16_t magic = c.u16();
  if (magic != kWireMagic) {
    if (diag != nullptr) {
      *diag = "bad magic 0x" + std::to_string(magic);
    }
    return DecodeStatus::kBadMagic;
  }
  const std::uint8_t version = c.u8();
  if (version != kWireVersion) {
    if (diag != nullptr) {
      *diag = "unknown wire version " + std::to_string(version) +
              " (speaking " + std::to_string(kWireVersion) + ")";
    }
    return DecodeStatus::kBadVersion;
  }
  const std::uint8_t type = c.u8();
  if (type >= sim::kMessageKindCount) {
    if (diag != nullptr) {
      *diag = "message type byte " + std::to_string(type) +
              " out of range";
    }
    return DecodeStatus::kBadKind;
  }
  out.type = static_cast<sim::MessageKind>(type);
  out.src = c.i32();
  out.dst = c.i32();
  out.version = c.u64();
  out.point.x = c.f64();
  out.point.y = c.f64();
  out.hops = c.u32();
  const std::uint8_t qkind = c.u8();
  if (qkind > static_cast<std::uint8_t>(protocol::QueryKind::kRadius)) {
    if (diag != nullptr) {
      *diag = "query kind byte " + std::to_string(qkind) + " out of range";
    }
    return DecodeStatus::kBadKind;
  }
  out.query.kind = static_cast<protocol::QueryKind>(qkind);
  out.query.a.x = c.f64();
  out.query.a.y = c.f64();
  out.query.b.x = c.f64();
  out.query.b.y = c.f64();
  out.query.tol = c.f64();
  out.query.issuer = c.i32();
  out.query_final = c.u8() != 0;
  out.epoch = c.u32();
  out.transfer_id = c.u64();
  out.transfer_slot = c.u32();
  out.span = c.u64();
  const std::uint32_t entries = c.u32();
  if (kFixedBodyBytes + static_cast<std::size_t>(entries) * kEntryBytes !=
      body) {
    if (diag != nullptr) {
      *diag = "entry count " + std::to_string(entries) +
              " inconsistent with body length " + std::to_string(body);
    }
    return DecodeStatus::kBadLength;
  }
  out.entries.clear();
  out.entries.reserve(entries);
  for (std::uint32_t i = 0; i < entries; ++i) {
    protocol::ViewEntry e;
    e.id = c.i32();
    e.pos.x = c.f64();
    e.pos.y = c.f64();
    out.entries.push_back(e);
  }
  consumed = kFramePrefixBytes + body;
  return DecodeStatus::kOk;
}

}  // namespace voronet::net
