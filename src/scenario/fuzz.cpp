#include "scenario/fuzz.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "common/expect.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "scenario/runner.hpp"

namespace voronet::scenario {

namespace {

/// Salt separating the oracle's probe draws from every other stream.
constexpr std::uint64_t kProbeSalt = 0x9b0be5a17ULL;

/// Fuzzed chaos intensities stay inside these bounds: strong enough to
/// hurt, bounded enough that every timeline still quiesces within the
/// run budget (a saturated drop probability retransmits for a long
/// simulated tail without being a protocol bug).
constexpr double kMaxBurstDrop = 0.35;
constexpr double kMaxSpikeFactor = 6.0;
constexpr double kMaxDuplication = 0.5;

Target draw_target(Rng& rng) {
  // Mostly uniform victims; one in three draws aims at the overlay's
  // structural weak points.
  switch (rng.index(6)) {
    case 0:
      return Target::kHighestDegree;
    case 1:
      return Target::kLongLinkHub;
    default:
      return Target::kUniformTarget;
  }
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed, const FuzzConfig& config) {
  Rng rng(seed ^ 0xf022ed5ULL);
  Scenario s;
  s.name = "fuzz_" + std::to_string(seed);
  s.seed = seed;
  s.population = config.min_population +
                 rng.index(config.max_population - config.min_population + 1);
  s.workload = rng.chance(0.25) ? "power_law" : "uniform";
  switch (rng.index(3)) {
    case 0:
      s.latency = protocol::LatencyModel::fixed(rng.uniform(0.005, 0.02));
      break;
    case 1:
      s.latency = protocol::LatencyModel::uniform(0.005, rng.uniform(0.02, 0.06));
      break;
    default:
      s.latency = protocol::LatencyModel::lognormal(0.005, 0.03,
                                                    rng.uniform(0.3, 1.0));
      break;
  }
  s.loss = rng.chance(0.5) ? rng.uniform(0.0, config.max_loss) : 0.0;
  s.failure_detect_delay = rng.uniform(0.2, 1.0);

  const std::size_t events =
      config.min_events + rng.index(config.max_events - config.min_events + 1);
  const double horizon = config.horizon;
  bool partitioned = false;
  for (std::size_t i = 0; i < events; ++i) {
    const double at = rng.uniform(0.0, horizon);
    // Weighted vocabulary draw: queries and churn dominate, gray
    // failures salt every second timeline or so.
    switch (rng.index(10)) {
      case 0:
        s.timeline.push_back(
            Event::join_burst(at, 2 + rng.index(8), rng.uniform(0.1, 0.5)));
        break;
      case 1:
        s.timeline.push_back(
            Event::leave(at, 1 + rng.index(4), rng.uniform(0.1, 0.5), 16)
                .with_target(draw_target(rng)));
        break;
      case 2:
      case 3:
        s.timeline.push_back(
            Event::crash(at, 1 + rng.index(4), rng.uniform(0.1, 0.5), 16)
                .with_target(draw_target(rng)));
        break;
      case 4:
        s.timeline.push_back(
            Event::stall(at, 1 + rng.index(2), rng.uniform(0.2, 0.6),
                         draw_target(rng)));
        break;
      case 5:
        s.timeline.push_back(Event::loss_burst(
            at, rng.uniform(0.2, 0.6), rng.uniform(0.1, kMaxBurstDrop)));
        break;
      case 6:
        s.timeline.push_back(Event::latency_spike(
            at, rng.uniform(0.2, 0.6), rng.uniform(2.0, kMaxSpikeFactor)));
        break;
      case 7:
        s.timeline.push_back(Event::duplicate(
            at, rng.uniform(0.2, 0.6), rng.uniform(0.1, kMaxDuplication)));
        break;
      case 8:
        if (!partitioned) {
          // Balanced by construction: the heal lands inside the horizon,
          // after the start.
          const double heal = rng.uniform(at + 0.2, horizon + 0.4);
          Event start = Event::partition_start(at, rng.uniform(0.3, 0.7));
          if (rng.chance(0.3)) start = start.with_target(draw_target(rng));
          s.timeline.push_back(start);
          s.timeline.push_back(Event::partition_heal(heal));
          partitioned = true;
          break;
        }
        [[fallthrough]];
      default:
        s.timeline.push_back(Event::query_stream(
            at, 2 + rng.index(6), rng.uniform(0.2, 0.6),
            QueryMix::kMixed, Spread::kUniform));
        break;
    }
  }
  // Occasional revive of whatever crashed first (no-op when nothing did).
  if (rng.chance(0.3)) {
    s.timeline.push_back(Event::revive(horizon, 1 + rng.index(2)));
  }
  validate(s);  // the generator must only ever emit valid scenarios
  return s;
}

namespace {

Verdict violation(std::string what) {
  Verdict v;
  v.ok = false;
  v.violation = std::move(what);
  return v;
}

}  // namespace

Verdict judge_run(Runner& runner, const Report& rep,
                  const OracleLimits& limits) {
  if (limits.require_quiesced && !rep.quiesced) {
    return violation("non-quiescence: run budget exhausted before idle (" +
                     std::to_string(rep.events_processed) +
                     " events processed, " +
                     std::to_string(rep.wire.retransmits) + " retransmits)");
  }
  if (limits.require_converged && !rep.converged) {
    return violation(
        "verify_views mismatch at quiescence: " +
        std::to_string(rep.final_stale) + " stale, " +
        std::to_string(rep.final_missing) + " missing, " +
        std::to_string(rep.final_dangling) + " dangling");
  }
  if (limits.require_completion && rep.completed != rep.queries) {
    return violation("query completion: " + std::to_string(rep.completed) +
                     "/" + std::to_string(rep.queries) + " completed");
  }
  if (limits.max_transfer_attempts > 0.0 &&
      rep.max_transfer_attempts > limits.max_transfer_attempts) {
    return violation("transfer attempts " +
                     std::to_string(rep.max_transfer_attempts) +
                     " exceeded the ceiling " +
                     std::to_string(limits.max_transfer_attempts));
  }
  if (rep.branch_failovers > limits.max_branch_failovers) {
    return violation("branch failovers " +
                     std::to_string(rep.branch_failovers) +
                     " exceeded the ceiling " +
                     std::to_string(limits.max_branch_failovers));
  }
  if (limits.require_exact_probes) {
    // Post-quiescence probes: the overlay is quiet and converged, so
    // the differential contract is exact equality -- any recall or
    // precision below 1 here is a real query-layer defect, not
    // staleness.  Geometry is drawn from a salted seed, independent of
    // the run's streams, so the probe set is a pure function of the
    // scenario seed (echoed in the report).
    protocol::QueryHarness& qh = runner.harness();
    Rng rng(rep.seed ^ kProbeSalt);
    const FuzzConfig defaults;
    for (std::size_t i = 0; i < defaults.probes; ++i) {
      const protocol::NodeId from = qh.harness().random_node(rng);
      protocol::QueryHarness::Differential d;
      if (i % 2 == 0) {
        const Vec2 c{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
        d = qh.run_radius(from, c, rng.uniform(0.05, 0.15));
      } else {
        const Vec2 a{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
        const Vec2 b{rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9)};
        d = qh.run_range(from, a, b, rng.uniform(0.02, 0.08));
      }
      if (!d.identical() || d.recall() != 1.0 || d.precision() != 1.0) {
        return violation("probe query " + std::to_string(i) +
                         " diverged from the ground truth at quiescence" +
                         " (recall " + std::to_string(d.recall()) +
                         ", precision " + std::to_string(d.precision()) +
                         ")");
      }
    }
  }
  return Verdict{};
}

Verdict run_oracle(const Scenario& s, const OracleLimits& limits) {
  try {
    Runner runner(s);
    // Armed on every judged run: the recorder is passive (bounded rings,
    // no scheduling), so the replayed event order is untouched, and a
    // violating run explains itself without a second execution.
    runner.record_flight();
    const Report rep = runner.run();
    Verdict v = judge_run(runner, rep, limits);
    if (!v.ok) {
      v.flight_recorder =
          runner.harness().harness().recorder().to_json().str();
    }
    return v;
  } catch (const std::exception& e) {
    // An execution that dies (run-budget assert, invariant check) is the
    // strongest kind of finding.
    return violation(std::string("execution aborted: ") + e.what());
  }
}

namespace {

/// Does `s` still violate?  Invalid candidates (ddmin can unbalance a
/// partition pair) simply do not count as reproducers.
bool still_fails(const Scenario& s, const OracleLimits& limits,
                 std::size_t& replays) {
  try {
    validate(s);
  } catch (const std::invalid_argument&) {
    return false;
  }
  ++replays;
  return !run_oracle(s, limits).ok;
}

Scenario with_timeline(const Scenario& s, Timeline t) {
  Scenario out = s;
  out.timeline = std::move(t);
  return out;
}

}  // namespace

Scenario minimize(const Scenario& s, const OracleLimits& limits,
                  std::size_t* replays) {
  std::size_t runs = 0;
  Scenario best = s;

  // Phase 1: ddmin over timeline events.  Replay determinism makes each
  // candidate a cheap, exact check -- no flakiness, no retries.
  std::size_t granularity = 2;
  while (best.timeline.size() >= 2) {
    const std::size_t n = best.timeline.size();
    granularity = std::min(granularity, n);
    const std::size_t chunk = (n + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < n && !reduced; start += chunk) {
      // Candidate: the timeline WITHOUT [start, start+chunk).
      Timeline candidate;
      candidate.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (i < start || i >= std::min(start + chunk, n)) {
          candidate.push_back(best.timeline[i]);
        }
      }
      if (candidate.size() < n &&
          still_fails(with_timeline(best, std::move(candidate)), limits,
                      runs)) {
        Timeline kept;
        for (std::size_t i = 0; i < n; ++i) {
          if (i < start || i >= std::min(start + chunk, n)) {
            kept.push_back(best.timeline[i]);
          }
        }
        best.timeline = std::move(kept);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
      }
    }
    if (!reduced) {
      if (granularity >= n) break;  // 1-minimal w.r.t. event removal
      granularity = std::min(n, granularity * 2);
    }
  }

  // Phase 2: parameter shrinking -- halve burst sizes, window lengths
  // and intensities while the violation survives.  Each knob shrinks
  // greedily to its fixpoint.
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = 0; i < best.timeline.size(); ++i) {
      Event& e = best.timeline[i];
      if (e.count > 1) {
        Scenario candidate = best;
        candidate.timeline[i].count = e.count / 2;
        if (still_fails(candidate, limits, runs)) {
          best = std::move(candidate);
          shrunk = true;
          continue;
        }
      }
      if (e.duration > 0.05) {
        Scenario candidate = best;
        candidate.timeline[i].duration = e.duration / 2;
        if (still_fails(candidate, limits, runs)) {
          best = std::move(candidate);
          shrunk = true;
          continue;
        }
      }
      if (e.magnitude > 0.0) {
        Scenario candidate = best;
        candidate.timeline[i].magnitude = e.magnitude / 2;
        if (still_fails(candidate, limits, runs)) {
          best = std::move(candidate);
          shrunk = true;
        }
      }
    }
    // Population shrinks too: a 24-node reproducer beats an 80-node one.
    if (best.population / 2 >= 24) {
      Scenario candidate = best;
      candidate.population /= 2;
      if (still_fails(candidate, limits, runs)) {
        best = std::move(candidate);
        shrunk = true;
      }
    }
  }

  if (replays != nullptr) *replays = runs;
  return best;
}

std::vector<Finding> fuzz_range(std::uint64_t from, std::uint64_t to,
                                const FuzzConfig& config,
                                const OracleLimits& limits) {
  VORONET_EXPECT(from <= to, "fuzz seed range must be ascending");
  std::vector<Finding> findings;
  for (std::uint64_t seed = from; seed <= to; ++seed) {
    Scenario s = generate_scenario(seed, config);
    const Verdict v = run_oracle(s, limits);
    if (v.ok) continue;
    Finding f;
    f.seed = seed;
    f.violation = v.violation;
    f.minimized = minimize(s, limits, &f.shrink_replays);
    f.minimized.name = "regression_seed" + std::to_string(seed);
    // One more replay of the minimized reproducer for its dump: the
    // minimal run's flight recorder is the artifact worth shipping (the
    // original's is drowned in unrelated churn).
    const Verdict mv = run_oracle(f.minimized, limits);
    f.flight_recorder =
        mv.flight_recorder.empty() ? v.flight_recorder : mv.flight_recorder;
    f.scenario = std::move(s);
    findings.push_back(std::move(f));
  }
  return findings;
}

std::uint64_t nastiness(const Scenario& s) {
  const Report rep = run_scenario(s);
  // Pressure the run put on the recovery machinery, weighted towards the
  // rarest (hence most interesting) reactions.
  return rep.branch_failovers * 50 + rep.reissued * 20 +
         rep.wire.abandoned * 10 + rep.wire.stalled_deferred +
         rep.wire.retransmits + rep.wire.injected_duplicates +
         rep.stalls * 5 + rep.crashes * 5;
}

}  // namespace voronet::scenario
