// Scenario fuzzer: seeded random timelines over the full event
// vocabulary, a differential oracle, and a delta-debugging minimizer.
//
// The flywheel (tools/scenario_fuzzer drives it, CI runs a bounded
// deterministic smoke of it):
//
//   generate_scenario(seed)  -- a random but *valid* timeline: churn,
//       crash-stop failures, gray failures (stalls, loss bursts, latency
//       spikes, duplication), targeted adversarial victims, partitions,
//       query floods;
//   run_oracle(s)            -- execute through scenario::Runner and
//       judge: the run must quiesce, the strict differential view audit
//       must pass, every issued query must complete, and a batch of
//       deterministic post-quiescence probe queries must match the
//       sequential ground truth exactly (recall == precision == 1);
//   minimize(s)              -- ddmin over the timeline plus parameter
//       shrinking (halve counts, durations, magnitudes), each step a
//       cheap bit-exact replay, until the reproducer is 1-minimal;
//
// Findings serialize to scenarios/regressions/*.json, which the replay
// corpus (tests/scenario_test.cpp, CI's --check loop) runs forever.
//
// Everything here is deterministic: the same seed range produces the
// same findings and byte-identical minimized JSON on every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/scenario.hpp"

namespace voronet::scenario {

/// Knobs of the random timeline generator.  Defaults are sized so one
/// scenario runs in well under a second: the fuzzer's power comes from
/// seeds, not from giant single runs.
struct FuzzConfig {
  std::size_t min_population = 48;
  std::size_t max_population = 80;
  std::size_t min_events = 4;
  std::size_t max_events = 10;
  double horizon = 1.5;      ///< timeline events start inside [0, horizon]
  double max_loss = 0.25;    ///< base drop probability upper bound
  std::size_t probes = 4;    ///< post-quiescence probe queries (the oracle)
};

/// What the oracle tolerates.  The defaults encode the paper's
/// robustness contract; tests *tighten* them (e.g. forbid branch
/// failovers) to plant a guaranteed finding and prove the
/// detect -> minimize -> replay loop end to end.
struct OracleLimits {
  bool require_quiesced = true;
  bool require_converged = true;       ///< strict verify_views at the end
  bool require_completion = true;      ///< every issued query completed
  bool require_exact_probes = true;    ///< probe recall == precision == 1
  /// Reliable-transfer attempt ceiling (0 = unlimited).  With capped
  /// exponential backoff a transfer's attempts stay small even under
  /// bursts; a fixed RTO under correlated loss violates this.
  double max_transfer_attempts = 0.0;
  /// Branch-failover ceiling (SIZE_MAX = unlimited).
  std::uint64_t max_branch_failovers = ~0ULL;
};

/// One oracle verdict: ok, or the first violation in evaluation order.
struct Verdict {
  bool ok = true;
  std::string violation;  ///< empty when ok; names the clause with counts
  /// Flight-recorder dump (obs::FlightRecorder JSON) captured at the
  /// moment of the violation: what every node saw in its last moments.
  /// Empty when ok.
  std::string flight_recorder;
};

/// One fuzzer finding: the violating scenario and its minimized form.
struct Finding {
  std::uint64_t seed = 0;
  std::string violation;
  Scenario scenario;   ///< as generated
  Scenario minimized;  ///< 1-minimal reproducer (still violating)
  std::size_t shrink_replays = 0;  ///< oracle runs the minimizer spent
  /// Flight-recorder dump of the MINIMIZED reproducer's violating run
  /// (the explainable artifact tools/scenario_fuzzer writes beside the
  /// regression JSON).
  std::string flight_recorder;
};

/// Deterministically generate one random, validate()-clean scenario.
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed,
                                         const FuzzConfig& config = {});

/// Execute `s` and judge it against `limits`.  Never throws for a
/// judged violation; an execution that dies (assert, budget blowout)
/// is itself reported as a violation.  The flight recorder is armed for
/// every judged run (it is passive, so the replayed event order is
/// untouched), and its dump rides along on a violating Verdict.
[[nodiscard]] Verdict run_oracle(const Scenario& s,
                                 const OracleLimits& limits = {});

/// The oracle's judgement clauses alone, applied to an already-executed
/// run: quiescence, strict view convergence, query completion, transfer
/// and failover ceilings, then the deterministic probe batch (which runs
/// extra queries through the runner's harness -- hence non-const).  Each
/// violation message names the failed clause with its offending counts.
/// Used by run_oracle and by scenario_runner --check, so the CLI and the
/// fuzzer can never drift apart on what "healthy" means.
[[nodiscard]] Verdict judge_run(Runner& runner, const Report& rep,
                                const OracleLimits& limits = {});

/// Delta-debug `s` to a smaller scenario that still violates `limits`
/// (ddmin over timeline events, then parameter shrinking).  `s` itself
/// must violate.  `replays`, when non-null, receives the number of
/// oracle executions spent.
[[nodiscard]] Scenario minimize(const Scenario& s, const OracleLimits& limits,
                                std::size_t* replays = nullptr);

/// Fuzz seeds [from, to]: generate, judge, minimize every violation.
/// Deterministic: same range, same findings, same minimized timelines.
[[nodiscard]] std::vector<Finding> fuzz_range(
    std::uint64_t from, std::uint64_t to, const FuzzConfig& config = {},
    const OracleLimits& limits = {});

/// Adversarial pressure score of a clean run (used to pick the
/// "nastiest" surviving timelines worth committing as regression
/// scenarios): failovers, re-issues, retransmissions, abandons, parked
/// deliveries.  Deterministic for a given scenario.
[[nodiscard]] std::uint64_t nastiness(const Scenario& s);

}  // namespace voronet::scenario
