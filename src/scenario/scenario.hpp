// scenario::Scenario -- a declarative, replayable experiment description.
//
// A scenario bundles
//   * a parameterization: initial population N, workload distribution,
//     seed, latency model, loss rate, failure-detection delay;
//   * a timeline of typed events (src/scenario/events.hpp): membership
//     churn, crash-stop failures, partitions, region queries, and the
//     quiesce / verify barriers that give a run its checkpoints.
//
// Scenarios serialize to and from JSON (scenarios/*.json), so every run
// is recordable and replayable: scenario::Runner executes a scenario
// deterministically from its seed and emits one scenario::Report whose
// JSON is bit-identical across replays (asserted by tests/scenario_test).
#pragma once

#include <string>

#include "protocol/latency.hpp"
#include "scenario/events.hpp"

namespace voronet {
class Json;
}

namespace voronet::scenario {

struct Scenario {
  std::string name = "scenario";

  /// Initial population, grown through message-level joins before the
  /// timeline origin (the timeline's t = 0 is the post-populate instant).
  std::size_t population = 200;
  /// Overlay capacity; 0 derives a capacity comfortably above population
  /// plus every scheduled join.
  std::size_t n_max = 0;
  std::uint64_t seed = 1;
  /// Join-position workload: "uniform" or "power_law".
  std::string workload = "uniform";
  double power_law_alpha = 5.0;
  /// Simulated-time spacing between the populate phase's joins.
  double populate_spacing = 0.01;

  protocol::LatencyModel latency = protocol::LatencyModel::fixed(0.0);
  double loss = 0.0;
  /// Transport retry cap (NetworkConfig::max_retries); 0 = retry until
  /// the destination is observed crashed.  Scenarios that exercise the
  /// failure detector's false-positive path (stall + query flood) set
  /// this so a wedged receiver eventually looks dead to its senders.
  std::size_t max_retries = 0;
  double failure_detect_delay = 1.0;

  /// Metrics-sampling window length (simulated seconds) for the Report's
  /// time series; 0 disables sampling.  Part of the scenario because the
  /// Runner sequences its drains on the window boundaries: a sampled run
  /// may round its duration up to a boundary, so the knob must replay
  /// with the scenario to keep reports bit-identical.
  double sample_interval = 0.0;

  Timeline timeline;

  /// Total joins the timeline can schedule (count-based events only;
  /// Poisson streams estimate rate * duration, rounded up).
  [[nodiscard]] std::size_t scheduled_joins() const;
};

/// Structural validation: known kinds, barriers in non-decreasing time
/// order, partitions balanced (a scenario must not end partitioned --
/// reliable transfers would retry forever and the final drain could not
/// quiesce).  Throws std::invalid_argument with a description.
void validate(const Scenario& s);

[[nodiscard]] Json scenario_to_json(const Scenario& s);
[[nodiscard]] Scenario scenario_from_json(const Json& doc);

/// Load + parse + validate a scenario file.
[[nodiscard]] Scenario load_scenario(const std::string& path);
/// Serialize a scenario to `path` (pretty-printed JSON).
void save_scenario(const std::string& path, const Scenario& s);

[[nodiscard]] const char* event_kind_name(EventKind kind);
[[nodiscard]] const char* target_name(Target target);
[[nodiscard]] const char* spread_name(Spread spread);
[[nodiscard]] const char* query_mix_name(QueryMix mix);

}  // namespace voronet::scenario
