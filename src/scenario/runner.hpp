// scenario::Runner -- the one execution engine every scenario runs
// through.
//
// A Runner builds the full differential stack (Overlay ground truth +
// message-level protocol engine + query engine) from a Scenario's
// parameterization, grows the initial population, schedules the timeline
// through QueryHarness::schedule_event, sequences the quiesce / verify
// barriers, and emits one unified scenario::Report: convergence time,
// per-kind message counts, wire statistics, differential verdicts and
// per-query completion / recall / precision grading.
//
// Replay guarantee: everything the Runner does is driven by the
// scenario's seed through the deterministic event queue -- no wall-clock
// value enters the Report -- so running the same scenario twice produces
// bit-identical Report JSON (asserted over every committed scenario file
// by tests/scenario_test.cpp).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "obs/sampler.hpp"
#include "protocol/query_harness.hpp"
#include "scenario/scenario.hpp"
#include "sim/metrics.hpp"

namespace voronet {
class Json;
}

namespace voronet::scenario {

struct Report {
  std::string name;
  /// Parameter echo, so a report identifies its experiment on its own.
  std::uint64_t seed = 0;
  std::string latency_name;
  double loss = 0.0;

  std::size_t initial_population = 0;
  std::size_t final_population = 0;
  std::size_t joins = 0;    ///< timeline joins scheduled (incl. revives)
  std::size_t leaves = 0;   ///< leaves executed (population-floor skips excluded)
  std::size_t crashes = 0;  ///< crashes executed
  std::size_t revives = 0;  ///< crash positions rejoined
  std::size_t stalls = 0;   ///< gray-failure stall windows opened

  bool quiesced = false;   ///< every drain completed within budget
  bool converged = false;  ///< strict differential view audit at the end
  /// The final audit's raw counts, so a convergence failure names its
  /// offenders instead of just flipping the bit (scenario_runner --check,
  /// fuzz oracle clause messages).
  std::size_t final_stale = 0;
  std::size_t final_missing = 0;
  std::size_t final_dangling = 0;
  double duration = 0.0;   ///< simulated time, timeline origin -> drain
  /// Timeline origin -> last view-advancing update (the convergence
  /// instant of the workload; 0 when the timeline changed no views).
  double convergence_time = 0.0;
  std::size_t events_processed = 0;

  /// Wire accounting over the timeline phase (populate excluded): deltas
  /// of the Network's counters.
  protocol::NetworkStats wire;
  /// Reliable-transfer attempt distribution over the whole run (settled
  /// and abandoned transfers; 1 = no retransmission).  The max is the
  /// retransmit-storm detector the chaos tests assert against.
  std::size_t transfers_settled = 0;
  double mean_transfer_attempts = 0.0;
  double max_transfer_attempts = 0.0;
  /// Per-kind message deltas over the timeline phase.
  std::array<std::uint64_t, sim::kMessageKindCount> messages{};
  std::uint64_t total_messages = 0;
  /// Per-kind serialized bytes-on-wire deltas (codec frame sizes,
  /// net/wire_format.hpp -- identical billing on every transport
  /// backend, retransmissions included).
  std::array<std::uint64_t, sim::kMessageKindCount> wire_bytes_by_kind{};
  std::uint64_t total_wire_bytes = 0;

  // --- Query grading (vs the post-quiescence ground truth) -----------------
  std::size_t queries = 0;
  std::size_t completed = 0;
  std::size_t identical = 0;  ///< result sets equal to the ground truth
  std::size_t exact = 0;      ///< recall == precision == 1
  std::size_t reissued = 0;   ///< needed more than one flood epoch
  std::uint32_t max_epochs = 0;
  std::uint64_t branch_failovers = 0;
  double mean_recall = 1.0, min_recall = 1.0;
  double mean_precision = 1.0, min_precision = 1.0;
  double p50_completion = 0.0, p99_completion = 0.0;
  double mean_route_hops = 0.0;
  /// Query-kind wire attempts (kQuery/kQueryForward/kQueryResult/
  /// kQueryAbort, retransmits included, transport acks excluded) per
  /// issued query -- churn/maintenance traffic is not billed here.
  double wire_msgs_per_query = 0.0;

  /// One row per kVerifyBarrier event: the differential audit at that
  /// instant (mid-partition barriers legitimately show stale views).
  struct Barrier {
    double at = 0.0;  ///< simulated time relative to the timeline origin
    std::size_t nodes = 0;
    std::size_t stale = 0;
    std::size_t missing = 0;
    std::size_t dangling = 0;
    std::size_t pending_joins = 0;
    std::size_t in_flight = 0;
    bool converged = false;
  };
  std::vector<Barrier> barriers;

  /// Windowed time series (Scenario::sample_interval > 0): per-kind
  /// message deltas plus end-of-window gauges at fixed sim-time
  /// boundaries.  The per-kind window sums equal the end-of-run `messages`
  /// deltas exactly (the sampler is passive; tests/obs_test.cpp asserts
  /// the conservation).
  double sample_interval = 0.0;
  bool windows_truncated = false;
  std::vector<obs::Window> windows;

  [[nodiscard]] std::uint64_t messages_of(sim::MessageKind kind) const {
    return messages[static_cast<std::size_t>(kind)];
  }

  /// The unified report schema (DESIGN.md, "Scenario API").  Fully
  /// deterministic for a given scenario + seed.
  [[nodiscard]] Json to_json() const;
};

class Runner {
 public:
  /// Validates and takes ownership of the scenario; the harness is built
  /// but the population is not grown until run().
  explicit Runner(Scenario s);

  /// Execute the scenario once: populate, schedule the timeline, sequence
  /// barriers, drain, grade.  Callable once per Runner.
  Report run();

  /// Collect a causal trace of the run (obs::Tracer).  Tracing starts at
  /// the timeline origin (the populate phase is not traced, matching the
  /// Report's delta accounting); read the result from
  /// harness().harness().tracer() after run().  Call before run().
  void set_trace(bool on = true) { trace_ = on; }

  /// Arm the flight recorder with a per-node ring of `per_node_capacity`
  /// entries (obs::FlightRecorder); dumps via
  /// harness().harness().recorder().to_json() after run().
  void record_flight(std::size_t per_node_capacity = 64) {
    flight_capacity_ = per_node_capacity;
  }

  /// The underlying differential stack, for callers that want to inspect
  /// state after the run (examples, tests).
  [[nodiscard]] protocol::QueryHarness& harness() { return qh_; }

 private:
  Scenario scenario_;
  protocol::QueryHarness qh_;
  bool ran_ = false;
  bool trace_ = false;
  std::size_t flight_capacity_ = 0;
};

/// Convenience: build a Runner, run, return the report.
Report run_scenario(const Scenario& s);

// ---------------------------------------------------------------------------
// Sweep combinator: one scenario x a parameter grid.
// ---------------------------------------------------------------------------

/// Axes of a sweep; an empty axis keeps the base scenario's value.  Cells
/// run in population-major, then latency, then loss order (the order the
/// bench tables print in).
struct SweepGrid {
  std::vector<protocol::LatencyModel> latencies;
  std::vector<double> losses;
  std::vector<std::size_t> populations;
};

struct SweepCell {
  Scenario scenario;  ///< the base with this cell's overrides applied
  Report report;
};

/// Run `base` once per grid cell (latency x loss x population), applying
/// the overrides to a copy.  Replaces the hand-rolled latency x loss
/// loops the protocol / query benches and tests used to copy-paste.
std::vector<SweepCell> sweep(const Scenario& base, const SweepGrid& grid);

}  // namespace voronet::scenario
