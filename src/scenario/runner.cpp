#include "scenario/runner.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/expect.hpp"
#include "common/json.hpp"
#include "stats/summary.hpp"

namespace voronet::scenario {

namespace {

protocol::HarnessConfig harness_config(const Scenario& s) {
  validate(s);  // runs before the member harness is built
  protocol::HarnessConfig config;
  // Capacity comfortably above everything the timeline can add; dmin and
  // the routing bounds derive from it, so a serialized n_max pins the
  // overlay geometry exactly.
  config.overlay.n_max =
      s.n_max > 0 ? s.n_max : (s.population + s.scheduled_joins()) * 2 + 64;
  config.overlay.seed = s.seed;
  config.network.latency = s.latency;
  config.network.drop_probability = s.loss;
  config.network.max_retries = s.max_retries;
  config.network.seed = s.seed ^ 0xfeedULL;
  config.failure_detect_delay = s.failure_detect_delay;
  config.seed = s.seed ^ 0x907aULL;
  return config;
}

workload::DistributionConfig workload_config(const Scenario& s) {
  return s.workload == "power_law"
             ? workload::DistributionConfig::power_law(s.power_law_alpha)
             : workload::DistributionConfig::uniform();
}

Json stats_json(const protocol::NetworkStats& w) {
  return Json::object()
      .set("sends", Json::integer(w.sends))
      .set("transmissions", Json::integer(w.transmissions))
      .set("delivered", Json::integer(w.delivered))
      .set("duplicates", Json::integer(w.duplicates))
      .set("dropped", Json::integer(w.dropped))
      .set("retransmits", Json::integer(w.retransmits))
      .set("abandoned", Json::integer(w.abandoned))
      .set("acks", Json::integer(w.acks))
      .set("injected_duplicates", Json::integer(w.injected_duplicates))
      .set("stalled_deferred", Json::integer(w.stalled_deferred))
      .set("wire_bytes", Json::integer(w.wire_bytes));
}

}  // namespace

Json Report::to_json() const {
  Json doc = Json::object();
  doc.set("scenario", Json::object()
                          .set("name", Json::string(name))
                          .set("seed", Json::integer(seed))
                          .set("latency", Json::string(latency_name))
                          .set("loss", Json::number(loss)));
  doc.set("quiesced", Json::boolean(quiesced));
  doc.set("converged", Json::boolean(converged));
  doc.set("final_audit", Json::object()
                             .set("stale", Json::integer(final_stale))
                             .set("missing", Json::integer(final_missing))
                             .set("dangling", Json::integer(final_dangling)));
  doc.set("population", Json::object()
                            .set("initial", Json::integer(initial_population))
                            .set("final", Json::integer(final_population)));
  doc.set("operations", Json::object()
                            .set("joins", Json::integer(joins))
                            .set("leaves", Json::integer(leaves))
                            .set("crashes", Json::integer(crashes))
                            .set("revives", Json::integer(revives))
                            .set("stalls", Json::integer(stalls)));
  doc.set("sim", Json::object()
                     .set("duration", Json::number(duration))
                     .set("convergence_time", Json::number(convergence_time))
                     .set("events_processed",
                          Json::integer(events_processed)));
  doc.set("wire", stats_json(wire));
  doc.set("transfers",
          Json::object()
              .set("settled", Json::integer(transfers_settled))
              .set("mean_attempts", Json::number(mean_transfer_attempts))
              .set("max_attempts", Json::number(max_transfer_attempts)));
  Json per_type = Json::object();
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    per_type.set(
        std::string(sim::message_kind_name(static_cast<sim::MessageKind>(k))),
        Json::integer(messages[k]));
  }
  doc.set("messages_by_type", std::move(per_type));
  doc.set("total_messages", Json::integer(total_messages));
  Json per_type_bytes = Json::object();
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    per_type_bytes.set(
        std::string(sim::message_kind_name(static_cast<sim::MessageKind>(k))),
        Json::integer(wire_bytes_by_kind[k]));
  }
  doc.set("wire_bytes_by_type", std::move(per_type_bytes));
  doc.set("total_wire_bytes", Json::integer(total_wire_bytes));
  doc.set(
      "queries",
      Json::object()
          .set("issued", Json::integer(queries))
          .set("completed", Json::integer(completed))
          .set("identical", Json::integer(identical))
          .set("exact", Json::integer(exact))
          .set("reissued", Json::integer(reissued))
          .set("max_epochs", Json::integer(max_epochs))
          .set("branch_failovers", Json::integer(branch_failovers))
          .set("mean_recall", Json::number(mean_recall))
          .set("min_recall", Json::number(min_recall))
          .set("mean_precision", Json::number(mean_precision))
          .set("min_precision", Json::number(min_precision))
          .set("p50_completion", Json::number(p50_completion))
          .set("p99_completion", Json::number(p99_completion))
          .set("mean_route_hops", Json::number(mean_route_hops))
          .set("wire_msgs_per_query", Json::number(wire_msgs_per_query)));
  Json rows = Json::array();
  for (const Barrier& b : barriers) {
    rows.push(Json::object()
                  .set("at", Json::number(b.at))
                  .set("nodes", Json::integer(b.nodes))
                  .set("stale", Json::integer(b.stale))
                  .set("missing", Json::integer(b.missing))
                  .set("dangling", Json::integer(b.dangling))
                  .set("pending_joins", Json::integer(b.pending_joins))
                  .set("in_flight", Json::integer(b.in_flight))
                  .set("converged", Json::boolean(b.converged)));
  }
  doc.set("barriers", std::move(rows));
  if (sample_interval > 0.0) {
    Json sampling = Json::object();
    sampling.set("interval", Json::number(sample_interval));
    sampling.set("truncated", Json::boolean(windows_truncated));
    Json ws = Json::array();
    for (const obs::Window& w : windows) {
      Json jw = Json::object()
                    .set("start", Json::number(w.start))
                    .set("end", Json::number(w.end));
      Json per = Json::object();
      for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
        if (w.messages[k] == 0) continue;  // keep the series readable
        per.set(std::string(sim::message_kind_name(
                    static_cast<sim::MessageKind>(k))),
                Json::integer(w.messages[k]));
      }
      jw.set("messages_by_type", std::move(per));
      jw.set("duplicates", Json::integer(w.duplicates));
      jw.set("retransmits", Json::integer(w.retransmits));
      jw.set("dropped", Json::integer(w.dropped));
      jw.set("gauges",
             Json::object()
                 .set("in_flight", Json::integer(w.gauges.in_flight))
                 .set("stalled_backlog",
                      Json::integer(w.gauges.stalled_backlog))
                 .set("pending_queries",
                      Json::integer(w.gauges.pending_queries))
                 .set("stale_views", Json::integer(w.gauges.stale_views))
                 .set("population", Json::integer(w.gauges.population)));
      ws.push(std::move(jw));
    }
    sampling.set("windows", std::move(ws));
    doc.set("sampling", std::move(sampling));
  }
  return doc;
}

Runner::Runner(Scenario s)
    : scenario_(std::move(s)), qh_(harness_config(scenario_)) {}

Report Runner::run() {
  VORONET_EXPECT(!ran_, "a Runner executes its scenario once");
  ran_ = true;

  Report rep;
  rep.name = scenario_.name;
  rep.seed = scenario_.seed;
  rep.latency_name = scenario_.latency.name();
  rep.loss = scenario_.loss;

  qh_.populate(scenario_.population, scenario_.seed,
               workload_config(scenario_), scenario_.populate_spacing);
  rep.initial_population = qh_.harness().node_count();

  protocol::ProtocolHarness& h = qh_.harness();
  // Observability arms at the timeline origin: the populate phase is
  // excluded from the Report's deltas, so it is excluded from the trace /
  // recorder / time series too.
  if (trace_) h.tracer().enable();
  if (flight_capacity_ > 0) h.recorder().enable(flight_capacity_);
  const double t0 = h.queue().now();
  const std::size_t processed_before = h.queue().processed();
  const protocol::NetworkStats wire_before = h.network().stats();
  std::array<std::uint64_t, sim::kMessageKindCount> msgs_before{};
  std::array<std::uint64_t, sim::kMessageKindCount> bytes_before{};
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    msgs_before[k] =
        h.network().metrics().messages(static_cast<sim::MessageKind>(k));
    bytes_before[k] =
        h.network().metrics().wire_bytes(static_cast<sim::MessageKind>(k));
  }

  // Windowed time series.  The sampler is passive: the Runner sequences
  // its drains on the window boundaries (run_until advances the clock to
  // the horizon even when the queue empties early), so sampling schedules
  // no events and cannot perturb the replayed event order.
  obs::MetricsSampler sampler(scenario_.sample_interval);
  const auto snapshot = [&h] {
    obs::CounterSnapshot c;
    for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
      c.messages[k] =
          h.network().metrics().messages(static_cast<sim::MessageKind>(k));
    }
    c.duplicates = h.network().stats().duplicates;
    c.retransmits = h.network().stats().retransmits;
    c.dropped = h.network().stats().dropped;
    return c;
  };
  const auto gauges = [&h] {
    obs::Gauges g;
    g.in_flight = h.network().in_flight();
    g.stalled_backlog = h.network().stalled_backlog();
    g.pending_queries = h.pending_queries();
    const auto audit = h.verify_views();
    g.stale_views = audit.stale + audit.missing;
    g.population = h.node_count();
    return g;
  };
  sampler.begin(t0, snapshot());
  /// Advance to `horizon`, closing a window at every sample boundary on
  /// the way; returns true when the event budget ran out.
  const auto drain_until = [&](double horizon) {
    while (sampler.active() && sampler.next_boundary() <= horizon) {
      const double b = sampler.next_boundary();
      const bool exhausted = h.run_until(b).budget_exhausted;
      sampler.take(b, snapshot(), gauges());
      if (exhausted) return true;
    }
    return h.run_until(horizon).budget_exhausted;
  };
  /// Drain to an empty queue in boundary-sized steps (so a long quiesce
  /// still yields windows); falls back to one plain run_to_idle once the
  /// sampler is off or truncated.
  const auto drain_to_idle = [&] {
    while (sampler.active() && !h.queue().idle()) {
      const double b = sampler.next_boundary();
      const bool exhausted = h.run_until(b).budget_exhausted;
      sampler.take(b, snapshot(), gauges());
      if (exhausted) return true;
    }
    return h.run_to_idle().budget_exhausted;
  };

  // Timeline-derived seed: decoupled from the overlay / network streams
  // so editing the network parameterization does not reshuffle the
  // workload draws.
  const auto ctx = std::make_shared<protocol::QueryHarness::ScheduleContext>(
      scenario_.seed ^ 0x5ce0a10ULL, workload_config(scenario_));

  rep.quiesced = true;
  for (const Event& e : scenario_.timeline) {
    if (e.kind == EventKind::kQuiesce || e.kind == EventKind::kVerifyBarrier) {
      // Barriers sequence the run: advance to the barrier instant, then
      // (for quiesce) drain, (for verify) record the differential audit.
      if (t0 + e.at > h.queue().now()) {
        if (drain_until(t0 + e.at)) {
          rep.quiesced = false;
          break;
        }
      }
      if (e.kind == EventKind::kQuiesce) {
        if (drain_to_idle()) {
          rep.quiesced = false;
          break;
        }
      } else {
        const auto audit = h.verify_views();
        Report::Barrier row;
        row.at = h.queue().now() - t0;
        row.nodes = h.node_count();
        row.stale = audit.stale;
        row.missing = audit.missing;
        row.dangling = audit.dangling;
        row.pending_joins = h.pending_joins();
        row.in_flight = h.network().in_flight();
        row.converged = audit.converged();
        rep.barriers.push_back(row);
      }
      continue;
    }
    qh_.schedule_event(e, t0, ctx);
  }

  if (rep.quiesced) {
    rep.quiesced = !drain_to_idle();
  }
  // Close the final (partial) window so the per-kind window sums equal
  // the end-of-run deltas exactly; no-op when sampling is off.
  sampler.take(h.queue().now(), snapshot(), gauges());
  rep.sample_interval = scenario_.sample_interval;
  rep.windows = sampler.windows();
  rep.windows_truncated = sampler.truncated();

  const auto final_audit = h.verify_views();
  rep.converged = final_audit.converged();
  rep.final_stale = final_audit.stale;
  rep.final_missing = final_audit.missing;
  rep.final_dangling = final_audit.dangling;
  rep.duration = h.queue().now() - t0;
  rep.convergence_time = std::max(0.0, h.last_apply_time() - t0);
  rep.events_processed = h.queue().processed() - processed_before;
  rep.final_population = h.node_count();
  rep.joins = ctx->joins;
  rep.leaves = ctx->leaves;
  rep.crashes = ctx->crashes;
  rep.revives = ctx->revives;
  rep.stalls = ctx->stalls;

  const protocol::NetworkStats& wire_after = h.network().stats();
  rep.wire.sends = wire_after.sends - wire_before.sends;
  rep.wire.transmissions = wire_after.transmissions - wire_before.transmissions;
  rep.wire.delivered = wire_after.delivered - wire_before.delivered;
  rep.wire.duplicates = wire_after.duplicates - wire_before.duplicates;
  rep.wire.dropped = wire_after.dropped - wire_before.dropped;
  rep.wire.retransmits = wire_after.retransmits - wire_before.retransmits;
  rep.wire.abandoned = wire_after.abandoned - wire_before.abandoned;
  rep.wire.acks = wire_after.acks - wire_before.acks;
  rep.wire.injected_duplicates =
      wire_after.injected_duplicates - wire_before.injected_duplicates;
  rep.wire.stalled_deferred =
      wire_after.stalled_deferred - wire_before.stalled_deferred;
  rep.wire.wire_bytes = wire_after.wire_bytes - wire_before.wire_bytes;
  // Transfer-attempt distribution (whole run: the populate phase runs
  // under the same loss model, so its attempts belong in the picture).
  const stats::StreamingSummary& attempts =
      h.network().metrics().transfer_attempts();
  rep.transfers_settled = attempts.count();
  rep.mean_transfer_attempts = attempts.mean();
  rep.max_transfer_attempts = attempts.count() ? attempts.max() : 0.0;
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    rep.messages[k] =
        h.network().metrics().messages(static_cast<sim::MessageKind>(k)) -
        msgs_before[k];
    rep.total_messages += rep.messages[k];
    rep.wire_bytes_by_kind[k] =
        h.network().metrics().wire_bytes(static_cast<sim::MessageKind>(k)) -
        bytes_before[k];
    rep.total_wire_bytes += rep.wire_bytes_by_kind[k];
  }

  rep.queries = ctx->query_ids.size();
  stats::OfflineSummary latency;
  stats::StreamingSummary hops;
  double recall_sum = 0.0;
  double precision_sum = 0.0;
  for (const std::uint64_t id : ctx->query_ids) {
    const auto d = qh_.collect(id);
    if (!d.completed) continue;
    ++rep.completed;
    if (d.identical()) ++rep.identical;
    const double r = d.recall();
    const double p = d.precision();
    recall_sum += r;
    precision_sum += p;
    rep.min_recall = std::min(rep.min_recall, r);
    rep.min_precision = std::min(rep.min_precision, p);
    if (r == 1.0 && p == 1.0) ++rep.exact;
    if (d.msg.epoch > 1) ++rep.reissued;
    rep.max_epochs = std::max(rep.max_epochs, d.msg.epoch);
    rep.branch_failovers += d.msg.branch_failovers;
    latency.add(d.msg.latency());
    hops.add(static_cast<double>(d.msg.route_hops));
  }
  if (rep.completed > 0) {
    rep.mean_recall = recall_sum / static_cast<double>(rep.completed);
    rep.mean_precision = precision_sum / static_cast<double>(rep.completed);
    rep.p50_completion = latency.quantile(0.5);
    rep.p99_completion = latency.quantile(0.99);
    rep.mean_route_hops = hops.mean();
  } else if (rep.queries > 0) {
    // Nothing completed: report zero, not the perfect-run defaults -- a
    // consumer must be able to tell "all exact" from "none finished".
    rep.mean_recall = rep.min_recall = 0.0;
    rep.mean_precision = rep.min_precision = 0.0;
  }
  if (rep.queries > 0) {
    // Query-kind wire attempts only (retransmits included): a mixed
    // timeline's maintenance / repair traffic must not be billed to the
    // queries.  Transport acks are not attributable per kind and are
    // excluded (compare against rep.wire for the ack-inclusive totals).
    const std::uint64_t query_wire =
        rep.messages_of(sim::MessageKind::kQuery) +
        rep.messages_of(sim::MessageKind::kQueryForward) +
        rep.messages_of(sim::MessageKind::kQueryResult) +
        rep.messages_of(sim::MessageKind::kQueryAbort);
    rep.wire_msgs_per_query = static_cast<double>(query_wire) /
                              static_cast<double>(rep.queries);
  }
  return rep;
}

Report run_scenario(const Scenario& s) { return Runner(s).run(); }

std::vector<SweepCell> sweep(const Scenario& base, const SweepGrid& grid) {
  const std::vector<protocol::LatencyModel> latencies =
      grid.latencies.empty()
          ? std::vector<protocol::LatencyModel>{base.latency}
          : grid.latencies;
  const std::vector<double> losses =
      grid.losses.empty() ? std::vector<double>{base.loss} : grid.losses;
  const std::vector<std::size_t> populations =
      grid.populations.empty() ? std::vector<std::size_t>{base.population}
                               : grid.populations;
  std::vector<SweepCell> cells;
  cells.reserve(latencies.size() * losses.size() * populations.size());
  for (const std::size_t population : populations) {
    for (const auto& latency : latencies) {
      for (const double loss : losses) {
        SweepCell cell;
        cell.scenario = base;
        cell.scenario.population = population;
        cell.scenario.latency = latency;
        cell.scenario.loss = loss;
        cell.report = run_scenario(cell.scenario);
        cells.push_back(std::move(cell));
      }
    }
  }
  return cells;
}

}  // namespace voronet::scenario
