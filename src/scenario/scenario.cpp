#include "scenario/scenario.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string_view>

#include "common/json.hpp"

namespace voronet::scenario {

namespace {

template <typename Table, typename Enum = typename Table::value_type::second_type>
Enum parse_enum(std::string_view text, const Table& table,
                const char* what) {
  for (const auto& [name, value] : table) {
    if (text == name) return value;
  }
  throw std::invalid_argument(std::string("unknown ") + what + " \"" +
                              std::string(text) + "\"");
}

constexpr std::array<std::pair<std::string_view, EventKind>, 11>
    kEventKinds = {{
        {"join_burst", EventKind::kJoinBurst},
        {"leave", EventKind::kLeave},
        {"crash", EventKind::kCrash},
        {"revive", EventKind::kRevive},
        {"partition_start", EventKind::kPartitionStart},
        {"partition_heal", EventKind::kPartitionHeal},
        {"range_query", EventKind::kRangeQuery},
        {"radius_query", EventKind::kRadiusQuery},
        {"query_stream", EventKind::kQueryStream},
        {"quiesce", EventKind::kQuiesce},
        {"verify_barrier", EventKind::kVerifyBarrier},
}};

constexpr std::array<std::pair<std::string_view, Spread>, 3>
    kSpreads = {{
        {"even", Spread::kEven},
        {"uniform", Spread::kUniform},
        {"poisson", Spread::kPoisson},
}};

constexpr std::array<std::pair<std::string_view, QueryMix>, 3>
    kMixes = {{
        {"mixed", QueryMix::kMixed},
        {"range", QueryMix::kRange},
        {"radius", QueryMix::kRadius},
}};

constexpr std::array<std::pair<std::string_view, protocol::LatencyModel::Kind>,
                     3>
    kLatencyKinds = {{
        {"fixed", protocol::LatencyModel::Kind::kFixed},
        {"uniform", protocol::LatencyModel::Kind::kUniform},
        {"lognormal", protocol::LatencyModel::Kind::kLognormal},
}};

[[nodiscard]] bool multi_op(EventKind kind) {
  return kind == EventKind::kJoinBurst || kind == EventKind::kLeave ||
         kind == EventKind::kCrash || kind == EventKind::kQueryStream;
}

Json event_to_json(const Event& e) {
  Json j = Json::object();
  j.set("event", Json::string(event_kind_name(e.kind)));
  if (e.at != 0.0) j.set("at", Json::number(e.at));
  switch (e.kind) {
    case EventKind::kJoinBurst:
    case EventKind::kLeave:
    case EventKind::kCrash:
    case EventKind::kQueryStream:
      if (e.spread == Spread::kPoisson) {
        j.set("rate", Json::number(e.rate));
      } else {
        j.set("count", Json::integer(e.count));
      }
      j.set("duration", Json::number(e.duration));
      j.set("spread", Json::string(spread_name(e.spread)));
      if (e.kind == EventKind::kQueryStream) {
        j.set("mix", Json::string(query_mix_name(e.mix)));
      }
      if ((e.kind == EventKind::kLeave || e.kind == EventKind::kCrash) &&
          e.min_population > 0) {
        j.set("min_population", Json::integer(e.min_population));
      }
      break;
    case EventKind::kRevive:
      j.set("count", Json::integer(e.count));
      break;
    case EventKind::kPartitionStart:
      j.set("axis_value", Json::number(e.axis_value));
      break;
    case EventKind::kRangeQuery:
      if (e.has_spec) {
        j.set("ax", Json::number(e.a.x)).set("ay", Json::number(e.a.y));
        j.set("bx", Json::number(e.b.x)).set("by", Json::number(e.b.y));
        j.set("tolerance", Json::number(e.tol));
      }
      break;
    case EventKind::kRadiusQuery:
      if (e.has_spec) {
        j.set("cx", Json::number(e.a.x)).set("cy", Json::number(e.a.y));
        j.set("radius", Json::number(e.tol));
      }
      break;
    case EventKind::kPartitionHeal:
    case EventKind::kQuiesce:
    case EventKind::kVerifyBarrier:
      break;
  }
  return j;
}

Event event_from_json(const Json& j) {
  Event e;
  e.kind = parse_enum(j.at("event").as_string(), kEventKinds, "event kind");
  e.at = j.get_double("at", 0.0);
  if (multi_op(e.kind)) {
    e.duration = j.get_double("duration", 0.0);
    e.spread = parse_enum(j.get_string("spread", "even"), kSpreads, "spread");
    if (e.spread == Spread::kPoisson) {
      e.rate = j.get_double("rate", 0.0);
      e.count = 0;
    } else {
      e.count = j.get_uint("count", 0);
    }
    e.min_population = j.get_uint("min_population", 0);
    if (e.kind == EventKind::kQueryStream) {
      e.mix = parse_enum(j.get_string("mix", "mixed"), kMixes, "query mix");
    }
  }
  switch (e.kind) {
    case EventKind::kRevive:
      e.count = j.get_uint("count", 1);
      break;
    case EventKind::kPartitionStart:
      e.axis_value = j.get_double("axis_value", 0.5);
      break;
    case EventKind::kRangeQuery:
      if (j.find("ax") != nullptr) {
        e.has_spec = true;
        e.a = {j.at("ax").as_double(), j.at("ay").as_double()};
        e.b = {j.at("bx").as_double(), j.at("by").as_double()};
        e.tol = j.get_double("tolerance", 0.0);
      }
      break;
    case EventKind::kRadiusQuery:
      if (j.find("cx") != nullptr) {
        e.has_spec = true;
        e.a = {j.at("cx").as_double(), j.at("cy").as_double()};
        e.tol = j.get_double("radius", 0.0);
      }
      break;
    default:
      break;
  }
  return e;
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  for (const auto& [name, value] : kEventKinds) {
    if (value == kind) return name.data();
  }
  return "unknown";
}

const char* spread_name(Spread spread) {
  for (const auto& [name, value] : kSpreads) {
    if (value == spread) return name.data();
  }
  return "unknown";
}

const char* query_mix_name(QueryMix mix) {
  for (const auto& [name, value] : kMixes) {
    if (value == mix) return name.data();
  }
  return "unknown";
}

std::size_t Scenario::scheduled_joins() const {
  std::size_t joins = 0;
  for (const Event& e : timeline) {
    if (e.kind == EventKind::kJoinBurst || e.kind == EventKind::kRevive) {
      joins += e.spread == Spread::kPoisson
                   ? static_cast<std::size_t>(
                         std::ceil(e.rate * e.duration)) + 1
                   : e.count;
    }
  }
  return joins;
}

void validate(const Scenario& s) {
  if (s.population < 1) {
    throw std::invalid_argument("scenario population must be >= 1");
  }
  if (s.workload != "uniform" && s.workload != "power_law") {
    throw std::invalid_argument("unknown workload \"" + s.workload + "\"");
  }
  if (s.loss < 0.0 || s.loss >= 1.0) {
    throw std::invalid_argument("loss must be in [0, 1)");
  }
  bool partitioned = false;
  double barrier_at = 0.0;
  for (const Event& e : s.timeline) {
    if (e.at < 0.0) throw std::invalid_argument("event time must be >= 0");
    if (multi_op(e.kind)) {
      if (e.duration < 0.0) {
        throw std::invalid_argument("event duration must be >= 0");
      }
      if (e.spread == Spread::kPoisson && e.rate <= 0.0) {
        throw std::invalid_argument("poisson events need a positive rate");
      }
    }
    switch (e.kind) {
      case EventKind::kPartitionStart:
        if (partitioned) {
          throw std::invalid_argument("partition started twice without heal");
        }
        partitioned = true;
        break;
      case EventKind::kPartitionHeal:
        if (!partitioned) {
          throw std::invalid_argument("partition heal without a start");
        }
        partitioned = false;
        break;
      case EventKind::kQuiesce:
      case EventKind::kVerifyBarrier:
        // Barriers sequence the run; they must not move time backwards.
        if (e.at > 0.0 && e.at < barrier_at) {
          throw std::invalid_argument(
              "barrier events must be in non-decreasing time order");
        }
        barrier_at = std::max(barrier_at, e.at);
        break;
      default:
        break;
    }
  }
  if (partitioned) {
    throw std::invalid_argument(
        "scenario ends inside a partition (reliable transfers would retry "
        "forever); add a partition_heal event");
  }
}

Json scenario_to_json(const Scenario& s) {
  Json doc = Json::object();
  doc.set("name", Json::string(s.name));
  doc.set("population", Json::integer(s.population));
  if (s.n_max > 0) doc.set("n_max", Json::integer(s.n_max));
  doc.set("seed", Json::integer(s.seed));
  doc.set("workload", Json::string(s.workload));
  if (s.workload == "power_law") {
    doc.set("power_law_alpha", Json::number(s.power_law_alpha));
  }
  if (s.populate_spacing != 0.01) {
    doc.set("populate_spacing", Json::number(s.populate_spacing));
  }
  Json latency = Json::object();
  latency.set("kind", Json::string(s.latency.name()));
  latency.set("a", Json::number(s.latency.a));
  latency.set("b", Json::number(s.latency.b));
  if (s.latency.kind == protocol::LatencyModel::Kind::kLognormal) {
    latency.set("sigma", Json::number(s.latency.sigma));
  }
  Json network = Json::object();
  network.set("latency", std::move(latency));
  network.set("loss", Json::number(s.loss));
  doc.set("network", std::move(network));
  doc.set("failure_detect_delay", Json::number(s.failure_detect_delay));
  Json timeline = Json::array();
  for (const Event& e : s.timeline) timeline.push(event_to_json(e));
  doc.set("timeline", std::move(timeline));
  return doc;
}

Scenario scenario_from_json(const Json& doc) {
  Scenario s;
  s.name = doc.get_string("name", "scenario");
  s.population = doc.get_uint("population", 200);
  s.n_max = doc.get_uint("n_max", 0);
  s.seed = doc.get_uint("seed", 1);
  s.workload = doc.get_string("workload", "uniform");
  s.power_law_alpha = doc.get_double("power_law_alpha", 5.0);
  s.populate_spacing = doc.get_double("populate_spacing", 0.01);
  if (const Json* network = doc.find("network"); network != nullptr) {
    if (const Json* latency = network->find("latency"); latency != nullptr) {
      s.latency.kind = parse_enum(latency->get_string("kind", "fixed"),
                                  kLatencyKinds, "latency kind");
      s.latency.a = latency->get_double("a", 0.0);
      s.latency.b = latency->get_double("b", s.latency.a);
      s.latency.sigma = latency->get_double("sigma", 0.5);
    }
    s.loss = network->get_double("loss", 0.0);
  }
  s.failure_detect_delay = doc.get_double("failure_detect_delay", 1.0);
  if (const Json* timeline = doc.find("timeline"); timeline != nullptr) {
    for (std::size_t i = 0; i < timeline->size(); ++i) {
      s.timeline.push_back(event_from_json(timeline->item(i)));
    }
  }
  validate(s);
  return s;
}

Scenario load_scenario(const std::string& path) {
  return scenario_from_json(read_json_file(path));
}

void save_scenario(const std::string& path, const Scenario& s) {
  write_json_file(path, scenario_to_json(s));
}

}  // namespace voronet::scenario
