#include "scenario/scenario.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string_view>

#include "common/json.hpp"

namespace voronet::scenario {

namespace {

template <typename Table, typename Enum = typename Table::value_type::second_type>
Enum parse_enum(std::string_view text, const Table& table,
                const char* what) {
  for (const auto& [name, value] : table) {
    if (text == name) return value;
  }
  throw std::invalid_argument(std::string("unknown ") + what + " \"" +
                              std::string(text) + "\"");
}

constexpr std::array<std::pair<std::string_view, EventKind>, 16>
    kEventKinds = {{
        {"join_burst", EventKind::kJoinBurst},
        {"leave", EventKind::kLeave},
        {"crash", EventKind::kCrash},
        {"revive", EventKind::kRevive},
        {"partition_start", EventKind::kPartitionStart},
        {"partition_heal", EventKind::kPartitionHeal},
        {"range_query", EventKind::kRangeQuery},
        {"radius_query", EventKind::kRadiusQuery},
        {"query_stream", EventKind::kQueryStream},
        {"quiesce", EventKind::kQuiesce},
        {"verify_barrier", EventKind::kVerifyBarrier},
        {"stall", EventKind::kStall},
        {"resume", EventKind::kResume},
        {"loss_burst", EventKind::kLossBurst},
        {"latency_spike", EventKind::kLatencySpike},
        {"duplicate", EventKind::kDuplicate},
}};

constexpr std::array<std::pair<std::string_view, Target>, 4>
    kTargets = {{
        {"uniform", Target::kUniformTarget},
        {"highest_degree", Target::kHighestDegree},
        {"long_link_hub", Target::kLongLinkHub},
        {"densest_region", Target::kDensestRegion},
}};

constexpr std::array<std::pair<std::string_view, Spread>, 3>
    kSpreads = {{
        {"even", Spread::kEven},
        {"uniform", Spread::kUniform},
        {"poisson", Spread::kPoisson},
}};

constexpr std::array<std::pair<std::string_view, QueryMix>, 3>
    kMixes = {{
        {"mixed", QueryMix::kMixed},
        {"range", QueryMix::kRange},
        {"radius", QueryMix::kRadius},
}};

constexpr std::array<std::pair<std::string_view, protocol::LatencyModel::Kind>,
                     3>
    kLatencyKinds = {{
        {"fixed", protocol::LatencyModel::Kind::kFixed},
        {"uniform", protocol::LatencyModel::Kind::kUniform},
        {"lognormal", protocol::LatencyModel::Kind::kLognormal},
}};

[[nodiscard]] bool multi_op(EventKind kind) {
  return kind == EventKind::kJoinBurst || kind == EventKind::kLeave ||
         kind == EventKind::kCrash || kind == EventKind::kQueryStream;
}

/// Events whose victim selection honours Event::target.
[[nodiscard]] bool targeted(EventKind kind) {
  return kind == EventKind::kLeave || kind == EventKind::kCrash ||
         kind == EventKind::kStall || kind == EventKind::kPartitionStart;
}

/// The degradation-window kinds (duration + magnitude).
[[nodiscard]] bool window(EventKind kind) {
  return kind == EventKind::kLossBurst || kind == EventKind::kLatencySpike ||
         kind == EventKind::kDuplicate;
}

Json event_to_json(const Event& e) {
  Json j = Json::object();
  j.set("event", Json::string(event_kind_name(e.kind)));
  if (e.at != 0.0) j.set("at", Json::number(e.at));
  switch (e.kind) {
    case EventKind::kJoinBurst:
    case EventKind::kLeave:
    case EventKind::kCrash:
    case EventKind::kQueryStream:
      if (e.spread == Spread::kPoisson) {
        j.set("rate", Json::number(e.rate));
      } else {
        j.set("count", Json::integer(e.count));
      }
      j.set("duration", Json::number(e.duration));
      j.set("spread", Json::string(spread_name(e.spread)));
      if (e.kind == EventKind::kQueryStream) {
        j.set("mix", Json::string(query_mix_name(e.mix)));
      }
      if ((e.kind == EventKind::kLeave || e.kind == EventKind::kCrash) &&
          e.min_population > 0) {
        j.set("min_population", Json::integer(e.min_population));
      }
      break;
    case EventKind::kRevive:
      j.set("count", Json::integer(e.count));
      break;
    case EventKind::kPartitionStart:
      j.set("axis_value", Json::number(e.axis_value));
      break;
    case EventKind::kStall:
      j.set("count", Json::integer(e.count));
      j.set("duration", Json::number(e.duration));
      if (e.min_population > 0) {
        j.set("min_population", Json::integer(e.min_population));
      }
      break;
    case EventKind::kLossBurst:
    case EventKind::kLatencySpike:
    case EventKind::kDuplicate:
      j.set("duration", Json::number(e.duration));
      j.set("magnitude", Json::number(e.magnitude));
      break;
    case EventKind::kRangeQuery:
      if (e.has_spec) {
        j.set("ax", Json::number(e.a.x)).set("ay", Json::number(e.a.y));
        j.set("bx", Json::number(e.b.x)).set("by", Json::number(e.b.y));
        j.set("tolerance", Json::number(e.tol));
      }
      break;
    case EventKind::kRadiusQuery:
      if (e.has_spec) {
        j.set("cx", Json::number(e.a.x)).set("cy", Json::number(e.a.y));
        j.set("radius", Json::number(e.tol));
      }
      break;
    case EventKind::kPartitionHeal:
    case EventKind::kQuiesce:
    case EventKind::kVerifyBarrier:
    case EventKind::kResume:
      break;
  }
  if (targeted(e.kind) && e.target != Target::kUniformTarget) {
    j.set("target", Json::string(target_name(e.target)));
  }
  return j;
}

Event event_from_json(const Json& j) {
  Event e;
  e.kind = parse_enum(j.at("event").as_string(), kEventKinds, "event kind");
  e.at = j.get_double("at", 0.0);
  if (multi_op(e.kind)) {
    e.duration = j.get_double("duration", 0.0);
    e.spread = parse_enum(j.get_string("spread", "even"), kSpreads, "spread");
    if (e.spread == Spread::kPoisson) {
      e.rate = j.get_double("rate", 0.0);
      e.count = 0;
    } else {
      e.count = j.get_uint("count", 0);
    }
    e.min_population = j.get_uint("min_population", 0);
    if (e.kind == EventKind::kQueryStream) {
      e.mix = parse_enum(j.get_string("mix", "mixed"), kMixes, "query mix");
    }
  }
  switch (e.kind) {
    case EventKind::kRevive:
      e.count = j.get_uint("count", 1);
      break;
    case EventKind::kPartitionStart:
      e.axis_value = j.get_double("axis_value", 0.5);
      break;
    case EventKind::kStall:
      e.count = j.get_uint("count", 1);
      e.duration = j.at("duration").as_double();
      e.min_population = j.get_uint("min_population", 0);
      break;
    case EventKind::kLossBurst:
    case EventKind::kLatencySpike:
    case EventKind::kDuplicate:
      // Both mandatory: a window with no length or no intensity is a
      // typo, not a default.
      e.duration = j.at("duration").as_double();
      e.magnitude = j.at("magnitude").as_double();
      break;
    case EventKind::kRangeQuery:
      if (j.find("ax") != nullptr) {
        e.has_spec = true;
        e.a = {j.at("ax").as_double(), j.at("ay").as_double()};
        e.b = {j.at("bx").as_double(), j.at("by").as_double()};
        e.tol = j.get_double("tolerance", 0.0);
      }
      break;
    case EventKind::kRadiusQuery:
      if (j.find("cx") != nullptr) {
        e.has_spec = true;
        e.a = {j.at("cx").as_double(), j.at("cy").as_double()};
        e.tol = j.get_double("radius", 0.0);
      }
      break;
    default:
      break;
  }
  if (targeted(e.kind)) {
    e.target =
        parse_enum(j.get_string("target", "uniform"), kTargets, "target");
  }
  return e;
}

}  // namespace

const char* event_kind_name(EventKind kind) {
  for (const auto& [name, value] : kEventKinds) {
    if (value == kind) return name.data();
  }
  return "unknown";
}

const char* target_name(Target target) {
  for (const auto& [name, value] : kTargets) {
    if (value == target) return name.data();
  }
  return "unknown";
}

const char* spread_name(Spread spread) {
  for (const auto& [name, value] : kSpreads) {
    if (value == spread) return name.data();
  }
  return "unknown";
}

const char* query_mix_name(QueryMix mix) {
  for (const auto& [name, value] : kMixes) {
    if (value == mix) return name.data();
  }
  return "unknown";
}

std::size_t Scenario::scheduled_joins() const {
  std::size_t joins = 0;
  for (const Event& e : timeline) {
    if (e.kind == EventKind::kJoinBurst || e.kind == EventKind::kRevive) {
      joins += e.spread == Spread::kPoisson
                   ? static_cast<std::size_t>(
                         std::ceil(e.rate * e.duration)) + 1
                   : e.count;
    }
  }
  return joins;
}

void validate(const Scenario& s) {
  if (s.population < 1) {
    throw std::invalid_argument("scenario population must be >= 1");
  }
  if (s.workload != "uniform" && s.workload != "power_law") {
    throw std::invalid_argument("unknown workload \"" + s.workload + "\"");
  }
  if (s.loss < 0.0 || s.loss >= 1.0) {
    throw std::invalid_argument("loss must be in [0, 1)");
  }
  if (s.sample_interval < 0.0 || !std::isfinite(s.sample_interval)) {
    throw std::invalid_argument(
        "sample_interval must be finite and >= 0 (0 disables sampling)");
  }
  bool partitioned = false;
  double barrier_at = 0.0;
  for (std::size_t i = 0; i < s.timeline.size(); ++i) {
    const Event& e = s.timeline[i];
    // Position-carrying diagnostics: every timeline complaint names the
    // offending event by index and kind, so a hand-edited (or fuzzed)
    // scenario file pinpoints its own defect.
    const auto fail = [&](const std::string& what) {
      throw std::invalid_argument("timeline[" + std::to_string(i) + "] (" +
                                  event_kind_name(e.kind) + "): " + what);
    };
    if (e.at < 0.0) fail("event time must be >= 0");
    if (multi_op(e.kind)) {
      if (e.duration < 0.0) fail("event duration must be >= 0");
      if (e.spread == Spread::kPoisson && e.rate <= 0.0) {
        fail("poisson events need a positive rate");
      }
    }
    if (window(e.kind) || e.kind == EventKind::kStall) {
      // Gray failures are *windows*: an endless stall or loss burst
      // could never quiesce, so a positive, finite duration is part of
      // the vocabulary, not a style preference.
      if (!(e.duration > 0.0) || !std::isfinite(e.duration)) {
        fail("window duration must be positive and finite");
      }
    }
    switch (e.kind) {
      case EventKind::kPartitionStart:
        if (partitioned) fail("partition started twice without heal");
        partitioned = true;
        break;
      case EventKind::kPartitionHeal:
        if (!partitioned) fail("partition heal without a start");
        partitioned = false;
        break;
      case EventKind::kStall:
        if (e.count < 1) fail("stall needs at least one victim");
        break;
      case EventKind::kLossBurst:
        if (!(e.magnitude > 0.0) || e.magnitude >= 1.0) {
          fail("loss burst magnitude must lie in (0, 1)");
        }
        break;
      case EventKind::kLatencySpike:
        if (!(e.magnitude > 0.0) || !std::isfinite(e.magnitude)) {
          fail("latency spike magnitude must be a positive factor");
        }
        break;
      case EventKind::kDuplicate:
        if (!(e.magnitude > 0.0) || e.magnitude > 1.0) {
          fail("duplication magnitude must lie in (0, 1]");
        }
        break;
      case EventKind::kQuiesce:
      case EventKind::kVerifyBarrier:
        // Barriers sequence the run; they must not move time backwards.
        if (e.at > 0.0 && e.at < barrier_at) {
          fail("barrier events must be in non-decreasing time order");
        }
        barrier_at = std::max(barrier_at, e.at);
        break;
      default:
        break;
    }
  }
  if (partitioned) {
    throw std::invalid_argument(
        "scenario ends inside a partition (reliable transfers would retry "
        "forever); add a partition_heal event");
  }
}

Json scenario_to_json(const Scenario& s) {
  Json doc = Json::object();
  doc.set("name", Json::string(s.name));
  doc.set("population", Json::integer(s.population));
  if (s.n_max > 0) doc.set("n_max", Json::integer(s.n_max));
  doc.set("seed", Json::integer(s.seed));
  doc.set("workload", Json::string(s.workload));
  if (s.workload == "power_law") {
    doc.set("power_law_alpha", Json::number(s.power_law_alpha));
  }
  if (s.populate_spacing != 0.01) {
    doc.set("populate_spacing", Json::number(s.populate_spacing));
  }
  Json latency = Json::object();
  latency.set("kind", Json::string(s.latency.name()));
  latency.set("a", Json::number(s.latency.a));
  latency.set("b", Json::number(s.latency.b));
  if (s.latency.kind == protocol::LatencyModel::Kind::kLognormal) {
    latency.set("sigma", Json::number(s.latency.sigma));
  }
  Json network = Json::object();
  network.set("latency", std::move(latency));
  network.set("loss", Json::number(s.loss));
  if (s.max_retries > 0) {
    network.set("max_retries", Json::integer(s.max_retries));
  }
  doc.set("network", std::move(network));
  doc.set("failure_detect_delay", Json::number(s.failure_detect_delay));
  if (s.sample_interval > 0.0) {
    doc.set("sample_interval", Json::number(s.sample_interval));
  }
  Json timeline = Json::array();
  for (const Event& e : s.timeline) timeline.push(event_to_json(e));
  doc.set("timeline", std::move(timeline));
  return doc;
}

Scenario scenario_from_json(const Json& doc) {
  Scenario s;
  s.name = doc.get_string("name", "scenario");
  s.population = doc.get_uint("population", 200);
  s.n_max = doc.get_uint("n_max", 0);
  s.seed = doc.get_uint("seed", 1);
  s.workload = doc.get_string("workload", "uniform");
  s.power_law_alpha = doc.get_double("power_law_alpha", 5.0);
  s.populate_spacing = doc.get_double("populate_spacing", 0.01);
  if (const Json* network = doc.find("network"); network != nullptr) {
    if (const Json* latency = network->find("latency"); latency != nullptr) {
      s.latency.kind = parse_enum(latency->get_string("kind", "fixed"),
                                  kLatencyKinds, "latency kind");
      s.latency.a = latency->get_double("a", 0.0);
      s.latency.b = latency->get_double("b", s.latency.a);
      s.latency.sigma = latency->get_double("sigma", 0.5);
    }
    s.loss = network->get_double("loss", 0.0);
    s.max_retries = network->get_uint("max_retries", 0);
  }
  s.failure_detect_delay = doc.get_double("failure_detect_delay", 1.0);
  s.sample_interval = doc.get_double("sample_interval", 0.0);
  if (const Json* timeline = doc.find("timeline"); timeline != nullptr) {
    for (std::size_t i = 0; i < timeline->size(); ++i) {
      try {
        s.timeline.push_back(event_from_json(timeline->item(i)));
      } catch (const std::invalid_argument& e) {
        // Re-anchor the complaint at the event that carried it: "missing
        // key" alone is useless in a 40-event fuzzed timeline.
        throw std::invalid_argument("timeline[" + std::to_string(i) +
                                    "]: " + e.what());
      }
    }
  }
  validate(s);
  return s;
}

Scenario load_scenario(const std::string& path) {
  return scenario_from_json(read_json_file(path));
}

void save_scenario(const std::string& path, const Scenario& s) {
  write_json_file(path, scenario_to_json(s));
}

}  // namespace voronet::scenario
