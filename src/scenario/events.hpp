// The scenario event vocabulary: one set of typed, declarative timeline
// events that every workload driver in the repo consumes.
//
// A scenario (src/scenario/scenario.hpp) is a list of these events plus a
// seed and network parameterization; scenario::Runner executes them
// against the message-level protocol + query engines, and the sequential
// churn driver (voronet::run_events) interprets the membership/query
// subset directly against an Overlay.  Both drivers draw every stochastic
// choice (operation times, victims, query geometry) from one seeded Rng
// in event order, so a timeline replays bit-for-bit from its seed.
//
// This header is deliberately low-level -- geometry and <vector> only --
// so that src/voronet can consume the vocabulary without depending on the
// protocol or scenario layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geometry/vec2.hpp"

namespace voronet::scenario {

enum class EventKind : std::uint8_t {
  kJoinBurst,       ///< `count` joins (or a Poisson stream at `rate`)
  kLeave,           ///< voluntary departures of random live nodes
  kCrash,           ///< crash-stop failures of random live nodes
  kRevive,          ///< rejoin the positions of the most recent crashes
  kPartitionStart,  ///< cut every link crossing x = `axis_value`
  kPartitionHeal,   ///< remove the partition
  kRangeQuery,      ///< one range query (explicit or drawn geometry)
  kRadiusQuery,     ///< one radius query (explicit or drawn geometry)
  kQueryStream,     ///< `count` queries (or a Poisson stream at `rate`)
  kQuiesce,         ///< barrier: drain the event queue to idle
  kVerifyBarrier,   ///< barrier: record a differential view audit
  // --- Gray failures (chaos layer) -----------------------------------------
  kStall,           ///< `count` live nodes stop processing for `duration`
  kResume,          ///< end every stall window still open
  kLossBurst,       ///< add `magnitude` drop probability for `duration`
  kLatencySpike,    ///< multiply delays by `magnitude` for `duration`
  kDuplicate,       ///< duplicate transmissions w.p. `magnitude` for `duration`
};

/// How leave / crash / stall victims (and the targeted partition cut) are
/// chosen.  kUniformTarget draws from the run Rng; the adversarial
/// selectors resolve deterministically from the overlay ground truth at
/// fire time (ties break towards the smallest id, so a timeline replays
/// bit-for-bit).
enum class Target : std::uint8_t {
  kUniformTarget,   ///< uniformly random live node
  kHighestDegree,   ///< largest total view (vn + cn + lr + blr)
  kLongLinkHub,     ///< most incoming long links (largest blr set)
  kDensestRegion,   ///< most close neighbours (largest cn set)
};

/// How a multi-operation event spreads its operations over [at, at+duration].
enum class Spread : std::uint8_t {
  kEven,     ///< operation i fires at `at + i * duration / count`
  kUniform,  ///< each operation time drawn uniformly from the window
  kPoisson,  ///< Poisson process at `rate` until `at + duration`
};

/// Which query styles a kQueryStream mixes.
enum class QueryMix : std::uint8_t {
  kMixed,   ///< alternate range / radius
  kRange,
  kRadius,
};

/// One timeline event.  Which fields are meaningful depends on `kind`;
/// unused fields keep their defaults so events serialize compactly.
struct Event {
  EventKind kind = EventKind::kQuiesce;
  double at = 0.0;        ///< start, relative to the timeline origin
  double duration = 0.0;  ///< window the operations spread over
  std::size_t count = 1;  ///< operations in the window (kEven / kUniform)
  double rate = 0.0;      ///< operations per time unit (kPoisson)
  Spread spread = Spread::kEven;
  /// Leave / crash operations are skipped while the live population is at
  /// or below this floor (a scenario must not tear the overlay down).
  std::size_t min_population = 0;
  /// Explicit query geometry (kRangeQuery / kRadiusQuery).  When false,
  /// the executing driver draws scale-free geometry from the run Rng.
  bool has_spec = false;
  Vec2 a;            ///< segment start / disk centre
  Vec2 b;            ///< segment end (range only)
  double tol = 0.0;  ///< range tolerance / disk radius
  QueryMix mix = QueryMix::kMixed;  ///< kQueryStream composition
  double axis_value = 0.5;          ///< kPartitionStart cut position
  /// Victim selection for kLeave / kCrash / kStall; for kPartitionStart a
  /// non-uniform target aims the cut through the selected node's x.
  Target target = Target::kUniformTarget;
  /// Window intensity: added drop probability (kLossBurst), delay
  /// multiplier (kLatencySpike), per-transmission duplication probability
  /// (kDuplicate).
  double magnitude = 0.0;

  // --- Factories (the spellings scenarios are written in) ------------------

  /// Copy of this event with an adversarial victim selector applied
  /// (kLeave / kCrash / kStall / kPartitionStart).
  [[nodiscard]] Event with_target(Target t) const {
    Event e = *this;
    e.target = t;
    return e;
  }

  static Event join_burst(double at, std::size_t count, double duration,
                          Spread spread = Spread::kEven) {
    Event e;
    e.kind = EventKind::kJoinBurst;
    e.at = at;
    e.count = count;
    e.duration = duration;
    e.spread = spread;
    return e;
  }
  static Event join_poisson(double at, double rate, double duration) {
    Event e;
    e.kind = EventKind::kJoinBurst;
    e.at = at;
    e.rate = rate;
    e.duration = duration;
    e.spread = Spread::kPoisson;
    e.count = 0;
    return e;
  }
  static Event leave(double at, std::size_t count, double duration,
                     std::size_t min_population,
                     Spread spread = Spread::kUniform) {
    Event e;
    e.kind = EventKind::kLeave;
    e.at = at;
    e.count = count;
    e.duration = duration;
    e.min_population = min_population;
    e.spread = spread;
    return e;
  }
  static Event leave_poisson(double at, double rate, double duration,
                             std::size_t min_population) {
    Event e = leave(at, 0, duration, min_population, Spread::kPoisson);
    e.rate = rate;
    return e;
  }
  static Event crash(double at, std::size_t count, double duration,
                     std::size_t min_population,
                     Spread spread = Spread::kUniform) {
    Event e = leave(at, count, duration, min_population, spread);
    e.kind = EventKind::kCrash;
    return e;
  }
  static Event revive(double at, std::size_t count = 1) {
    Event e;
    e.kind = EventKind::kRevive;
    e.at = at;
    e.count = count;
    return e;
  }
  static Event partition_start(double at, double axis_value = 0.5) {
    Event e;
    e.kind = EventKind::kPartitionStart;
    e.at = at;
    e.axis_value = axis_value;
    return e;
  }
  static Event partition_heal(double at) {
    Event e;
    e.kind = EventKind::kPartitionHeal;
    e.at = at;
    return e;
  }
  static Event range_query(double at, Vec2 a, Vec2 b, double tol) {
    Event e;
    e.kind = EventKind::kRangeQuery;
    e.at = at;
    e.has_spec = true;
    e.a = a;
    e.b = b;
    e.tol = tol;
    return e;
  }
  static Event radius_query(double at, Vec2 center, double radius) {
    Event e;
    e.kind = EventKind::kRadiusQuery;
    e.at = at;
    e.has_spec = true;
    e.a = center;
    e.tol = radius;
    return e;
  }
  static Event query_stream(double at, std::size_t count, double duration,
                            QueryMix mix = QueryMix::kMixed,
                            Spread spread = Spread::kEven) {
    Event e;
    e.kind = EventKind::kQueryStream;
    e.at = at;
    e.count = count;
    e.duration = duration;
    e.mix = mix;
    e.spread = spread;
    return e;
  }
  static Event query_poisson(double at, double rate, double duration,
                             QueryMix mix = QueryMix::kMixed) {
    Event e = query_stream(at, 0, duration, mix, Spread::kPoisson);
    e.rate = rate;
    return e;
  }
  static Event stall(double at, std::size_t count, double duration,
                     Target target = Target::kUniformTarget) {
    Event e;
    e.kind = EventKind::kStall;
    e.at = at;
    e.count = count;
    e.duration = duration;
    e.target = target;
    return e;
  }
  static Event resume(double at) {
    Event e;
    e.kind = EventKind::kResume;
    e.at = at;
    return e;
  }
  static Event loss_burst(double at, double duration, double magnitude) {
    Event e;
    e.kind = EventKind::kLossBurst;
    e.at = at;
    e.duration = duration;
    e.magnitude = magnitude;
    return e;
  }
  static Event latency_spike(double at, double duration, double magnitude) {
    Event e;
    e.kind = EventKind::kLatencySpike;
    e.at = at;
    e.duration = duration;
    e.magnitude = magnitude;
    return e;
  }
  static Event duplicate(double at, double duration, double magnitude) {
    Event e;
    e.kind = EventKind::kDuplicate;
    e.at = at;
    e.duration = duration;
    e.magnitude = magnitude;
    return e;
  }
  static Event quiesce(double at = 0.0) {
    Event e;
    e.kind = EventKind::kQuiesce;
    e.at = at;
    return e;
  }
  static Event verify_barrier(double at = 0.0) {
    Event e;
    e.kind = EventKind::kVerifyBarrier;
    e.at = at;
    return e;
  }
};

using Timeline = std::vector<Event>;

}  // namespace voronet::scenario
