#include "voronet/churn.hpp"

#include <cmath>
#include <functional>
#include <utility>

#include "common/expect.hpp"

namespace voronet {

namespace {

/// Exponential inter-arrival time for a Poisson process of the given rate.
double exp_delay(double rate, Rng& rng) {
  return -std::log(rng.uniform(1e-12, 1.0)) / rate;
}

}  // namespace

ChurnReport run_churn(Overlay& overlay, workload::PointGenerator& points,
                      const ChurnConfig& config) {
  VORONET_EXPECT(config.duration > 0.0, "churn duration must be positive");
  ChurnReport report;
  sim::EventQueue queue;
  Rng rng(config.seed);

  std::array<std::uint64_t, sim::kMessageKindCount> msgs_before{};
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    msgs_before[k] =
        overlay.metrics().messages(static_cast<sim::MessageKind>(k));
  }

  // Each event class is a Poisson process that re-arms itself after every
  // firing until the horizon; the event queue interleaves the classes in
  // timestamp order.  `arm` outlives all scheduled events (run_to_idle is
  // called in this scope), so capturing it by reference is safe.
  std::function<void(double, std::function<void()>)> arm =
      [&](double rate, std::function<void()> action) {
        if (rate <= 0.0) return;
        const double delay = exp_delay(rate, rng);
        if (queue.now() + delay > config.duration) return;
        queue.schedule(delay, [&arm, rate, action = std::move(action)] {
          action();
          arm(rate, action);
        });
      };

  arm(config.join_rate, [&] {
    overlay.insert(points.next(rng));
    ++report.joins;
  });
  arm(config.leave_rate, [&] {
    if (overlay.size() <= config.min_population) return;
    overlay.remove(overlay.random_object(rng));
    ++report.leaves;
  });
  arm(config.query_rate, [&] {
    if (overlay.size() < 2) return;
    const ObjectId from = overlay.random_object(rng);
    overlay.query(from, {rng.uniform(), rng.uniform()});
    ++report.queries;
  });

  const sim::EventQueue::RunResult run = queue.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted,
                 "churn run exhausted the event budget before quiescence");
  report.events_processed = run.processed;
  report.simulated_time = queue.now();
  report.final_population = overlay.size();
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    report.messages[k] =
        overlay.metrics().messages(static_cast<sim::MessageKind>(k)) -
        msgs_before[k];
    report.total_messages += report.messages[k];
  }
  return report;
}

}  // namespace voronet
