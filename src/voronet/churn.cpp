#include "voronet/churn.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <utility>

#include "common/expect.hpp"

namespace voronet {

ChurnReport run_events(Overlay& overlay, workload::PointGenerator& points,
                       const std::vector<scenario::Event>& events,
                       std::uint64_t seed) {
  ChurnReport report;
  sim::EventQueue queue;
  // Shared by the self-re-arming Poisson closures, which outlive this
  // scope's locals on the event queue.
  const auto rng = std::make_shared<Rng>(seed);

  // Fire-time bodies of the three supported operation classes.
  const auto do_join = [&overlay, &points, rng, &report] {
    overlay.insert(points.next(*rng));
    ++report.joins;
  };
  const auto make_leave = [&overlay, rng, &report](std::size_t floor) {
    return [&overlay, rng, &report, floor] {
      if (overlay.size() <= floor) return;
      overlay.remove(overlay.random_object(*rng));
      ++report.leaves;
    };
  };
  const auto do_query = [&overlay, rng, &report] {
    if (overlay.size() < 2) return;
    const ObjectId from = overlay.random_object(*rng);
    overlay.query(from, {rng->uniform(), rng->uniform()});
    ++report.queries;
  };

  std::array<std::uint64_t, sim::kMessageKindCount> msgs_before{};
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    msgs_before[k] =
        overlay.metrics().messages(static_cast<sim::MessageKind>(k));
  }

  // A Poisson event class re-arms itself after every firing until its
  // window closes; the event queue interleaves the classes in timestamp
  // order.  Count-based events schedule every operation up front.
  const std::function<void(double, double, double, std::function<void()>)>
      arm = [&queue, rng, &arm](double rate, double end, double from,
                                std::function<void()> action) {
        if (rate <= 0.0) return;
        const double delay = rng->exponential(rate);
        if (from + delay > end) return;
        queue.schedule(from + delay - queue.now(),
                       [&arm, rate, end, at = from + delay,
                        action = std::move(action)] {
                         action();
                         arm(rate, end, at, action);
                       });
      };

  for (const scenario::Event& e : events) {
    VORONET_EXPECT(e.at >= 0.0 && e.duration >= 0.0,
                   "churn event with a negative time");
    std::function<void()> body;
    switch (e.kind) {
      case scenario::EventKind::kJoinBurst:
        body = do_join;
        break;
      case scenario::EventKind::kLeave:
        body = make_leave(std::max<std::size_t>(e.min_population, 1));
        break;
      case scenario::EventKind::kQueryStream:
        body = do_query;
        break;
      case scenario::EventKind::kQuiesce:
        continue;  // the sequential driver always runs to idle
      default:
        VORONET_EXPECT(false,
                       "sequential churn supports join/leave/query events "
                       "only; crash, partition and region-query timelines "
                       "need the message layer (scenario::Runner)");
    }
    if (e.spread == scenario::Spread::kPoisson) {
      arm(e.rate, e.at + e.duration, e.at, std::move(body));
      continue;
    }
    for (std::size_t i = 0; i < e.count; ++i) {
      const double at =
          e.spread == scenario::Spread::kUniform
              ? rng->uniform(e.at, e.at + e.duration)
              : (e.count <= 1 ? e.at
                              : e.at + e.duration * static_cast<double>(i) /
                                           static_cast<double>(e.count));
      queue.schedule(at - queue.now(), body);
    }
  }

  const sim::EventQueue::RunResult run = queue.run_to_idle();
  VORONET_EXPECT(!run.budget_exhausted,
                 "churn run exhausted the event budget before quiescence");
  report.events_processed = run.processed;
  report.simulated_time = queue.now();
  report.final_population = overlay.size();
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    report.messages[k] =
        overlay.metrics().messages(static_cast<sim::MessageKind>(k)) -
        msgs_before[k];
    report.total_messages += report.messages[k];
  }
  return report;
}

ChurnReport run_churn(Overlay& overlay, workload::PointGenerator& points,
                      const ChurnConfig& config) {
  VORONET_EXPECT(config.duration > 0.0, "churn duration must be positive");
  return run_events(overlay, points, config.events(), config.seed);
}

}  // namespace voronet
