// The one definition of the overlay's object identity.
//
// Object ids are the Delaunay vertex ids of the ground-truth
// tessellation, and every layer of the system -- the sequential overlay
// (voronet::ObjectId), the message-level protocol engine
// (protocol::NodeId) and the differential harnesses -- must agree on the
// invalid-id sentinel.  Historically the protocol layer carried its own
// `kNoNode = -2` literal next to the overlay's `kNoObject`; the two were
// equal only by coincidence of both copying
// DelaunayTriangulation::kNoVertex.  They are now aliases of this single
// definition, and protocol/message.hpp pins the aliasing with a
// static_assert (tests/query_engine_test.cpp re-checks it at runtime).
#pragma once

#include "geometry/delaunay.hpp"

namespace voronet {

using ObjectId = geo::DelaunayTriangulation::VertexId;
inline constexpr ObjectId kNoObject = geo::DelaunayTriangulation::kNoVertex;

}  // namespace voronet
