#include "voronet/lrt.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/expect.hpp"
#include "voronet/config.hpp"

namespace voronet {

double dmin_for(DminRule rule, std::size_t n_max) {
  VORONET_EXPECT(n_max >= 1, "n_max must be positive");
  const double n = static_cast<double>(n_max);
  switch (rule) {
    case DminRule::kPaperText:
      return 1.0 / (std::numbers::pi * n);
    case DminRule::kBallExpectation:
      return 1.0 / std::sqrt(std::numbers::pi * n);
  }
  VORONET_EXPECT(false, "unknown dmin rule");
  return 0.0;
}

Vec2 choose_long_range_target(Vec2 from, double dmin, Rng& rng) {
  VORONET_EXPECT(dmin > 0.0 && dmin < std::numbers::sqrt2,
                 "dmin must lie in (0, sqrt(2))");
  const double a = rng.uniform(std::log(dmin), std::log(std::numbers::sqrt2));
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double radius = std::exp(a);
  return from + Vec2{radius * std::cos(theta), radius * std::sin(theta)};
}

double lemma2_normalisation(double dmin) {
  return 2.0 * std::numbers::pi * std::log(std::numbers::sqrt2 / dmin);
}

double radial_cdf(double dmin, double r1, double r2) {
  VORONET_EXPECT(r1 <= r2, "radial_cdf requires r1 <= r2");
  const double lo = std::clamp(r1, dmin, std::numbers::sqrt2);
  const double hi = std::clamp(r2, dmin, std::numbers::sqrt2);
  if (hi <= lo) return 0.0;
  // a = ln r is uniform on [ln dmin, ln sqrt(2)].
  return (std::log(hi) - std::log(lo)) /
         (std::log(std::numbers::sqrt2) - std::log(dmin));
}

}  // namespace voronet
