#include "voronet/overlay.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/expect.hpp"
#include "geometry/voronoi.hpp"
#include "voronet/lrt.hpp"

namespace voronet {

namespace {

using sim::MessageKind;
using sim::OperationKind;

void insert_sorted(std::vector<ObjectId>& v, ObjectId o) {
  const auto it = std::lower_bound(v.begin(), v.end(), o);
  if (it == v.end() || *it != o) v.insert(it, o);
}

void erase_sorted(std::vector<ObjectId>& v, ObjectId o) {
  const auto it = std::lower_bound(v.begin(), v.end(), o);
  VORONET_EXPECT(it != v.end() && *it == o,
                 "view entry to erase is not present");
  v.erase(it);
}

bool erase_sorted_if_present(std::vector<ObjectId>& v, ObjectId o) {
  const auto it = std::lower_bound(v.begin(), v.end(), o);
  if (it == v.end() || *it != o) return false;
  v.erase(it);
  return true;
}

/// The single construction formula for a cached routing edge; shared by
/// rebuild_vn_geom and the invariant audit so the two can be compared
/// bit-for-bit.
VnEdge make_vn_edge(Vec2 self, Vec2 nb, ObjectId id) {
  return {nb, 1.0 / norm(nb - self), id};
}

bool vn_edge_equal(const VnEdge& a, const VnEdge& b) {
  return a.pos == b.pos && a.inv_len == b.inv_len && a.id == b.id;
}

}  // namespace

Overlay::Overlay(const OverlayConfig& config)
    : config_(config),
      dmin_(config.dmin()),
      oracle_({{-0.125, -0.125}, {1.125, 1.125}},
              std::max<std::size_t>(config.n_max, 64)),
      rng_(config.seed) {
  VORONET_EXPECT(config_.n_max >= 1, "n_max must be positive");
  VORONET_EXPECT(dmin_ > 0.0 && dmin_ < 1.0, "dmin out of range");
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

bool Overlay::contains(ObjectId o) const {
  return o >= 0 && o < static_cast<ObjectId>(nodes_.size()) &&
         nodes_[o].live;
}

const NodeView& Overlay::view(ObjectId o) const {
  return node_checked(o).view;
}

Vec2 Overlay::position(ObjectId o) const {
  return node_checked(o).view.position;
}

ObjectId Overlay::random_object(Rng& rng) const {
  VORONET_EXPECT(!live_ids_.empty(), "random_object on an empty overlay");
  return live_ids_[rng.index(live_ids_.size())];
}

Overlay::Node& Overlay::node(ObjectId o) {
  VORONET_DCHECK(contains(o));
  return nodes_[o];
}

const Overlay::Node& Overlay::node_checked(ObjectId o) const {
  VORONET_EXPECT(contains(o), "unknown object id");
  return nodes_[o];
}

void Overlay::ensure_slot(ObjectId o) {
  if (o >= static_cast<ObjectId>(nodes_.size())) {
    nodes_.resize(static_cast<std::size_t>(o) + 1);
    // Dead or never-registered slots carry NaN positions so the routing
    // hot loop can skip them without reading the Node (NaN distances lose
    // every comparison).
    pos_.resize(static_cast<std::size_t>(o) + 1,
                {std::numeric_limits<double>::quiet_NaN(),
                 std::numeric_limits<double>::quiet_NaN()});
    edge_slots_.resize(static_cast<std::size_t>(o) + 1);
  }
}

Vec2 Overlay::distance_to_region(ObjectId o, Vec2 p) const {
  return geo::closest_point_in_region(dt_, o, p);
}

// ---------------------------------------------------------------------------
// Routing (Algorithm 5 framework)
// ---------------------------------------------------------------------------

// NOTE: route_hop() fuses this same candidate scan with the stop-condition
// bound and must keep identical selection semantics (tie-break to smaller
// id, dangling peers skipped); routing_property_test walks routes through
// this function and compares them with probe_path, locking the two
// implementations together.
ObjectId Overlay::greedy_neighbor(ObjectId at, Vec2 target) const {
  const NodeView& v = node_checked(at).view;
  ObjectId best = kNoObject;
  double best_d = std::numeric_limits<double>::infinity();
  // Voronoi neighbours never dangle (their views are refreshed in the same
  // step that repairs the tessellation), so the cached positions can be
  // used without liveness checks.
  for (const VnEdge& e : v.vn_geom) {
    const double d = dist2(e.pos, target);
    if (d < best_d || (d == best_d && (best == kNoObject || e.id < best))) {
      best = e.id;
      best_d = d;
    }
  }
  const auto consider = [&](ObjectId o) {
    // Dangling entries (crashed peers) are skipped: the greedy step only
    // forwards to peers that would answer.
    if (o == kNoObject || o == at || !contains(o)) return;
    const double d = dist2(nodes_[o].view.position, target);
    if (d < best_d || (d == best_d && (best == kNoObject || o < best))) {
      best = o;
      best_d = d;
    }
  };
  if (config_.use_close_neighbors) {
    for (const ObjectId o : v.cn) consider(o);
  }
  if (config_.use_long_links) {
    for (const LongLink& l : v.lr) consider(l.neighbor);
  }
  return best;
}

Overlay::HopOutcome Overlay::route_hop(ObjectId cur, Vec2 target,
                                       double dmin2) const {
  {
    const NodeView& v = nodes_[cur].view;
    const double d2_target_cur = dist2(target, v.position);

    // Start the loads for the scattered greedy candidates (close
    // neighbours, long-link holders) while the arithmetic-only vn scan
    // runs; each is a potential cache miss the scan can hide.  The first
    // long link comes from the edge slot, so the common single-link case
    // never touches the view's lr vector.
    const EdgeSlot& slot = edge_slots_[cur];
    const bool lr_in_slot = config_.long_links <= 1;
    if (config_.use_long_links) {
      if (lr_in_slot) {
        if (slot.lr0 >= 0) __builtin_prefetch(&pos_[slot.lr0]);
      } else {
        for (const LongLink& l : v.lr) {
          if (l.neighbor >= 0) __builtin_prefetch(&pos_[l.neighbor]);
        }
      }
    }
    if (config_.use_close_neighbors) {
      for (const ObjectId o : v.cn) {
        if (o >= 0) __builtin_prefetch(&pos_[o]);
      }
    }

    // One fused pass over the Voronoi neighbourhood computes both halves
    // of the hop: the greedy candidate (closest neighbour to the target)
    // and a lower bound on d(target, cur's region).  The cached VnEdge
    // data makes each entry a handful of flops -- no neighbour-node
    // dereference, no square root (comparisons stay squared).  With
    // u = pos - cur and tv = target - cur, the signed overshoot past the
    // bisector is dot(target - mid, u) = dot(tv, u) - |u|^2 / 2.
    //
    // region_lb2 is the squared distance past the most violated bisector;
    // distance-to-region is at least that, and it is 0 iff the target lies
    // inside cur's region.
    const VnEdge* edges = slot.e;
    std::size_t edge_count = slot.count;
    if (edge_count > kInlineVnEdges) {
      edges = v.vn_geom.data();
      edge_count = v.vn_geom.size();
    }
    const Vec2 tv = target - v.position;
    double region_lb2 = 0.0;
    ObjectId best = kNoObject;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < edge_count; ++i) {
      const VnEdge& e = edges[i];
      const double d = dist2(e.pos, target);
      if (d < best_d || (d == best_d && (best == kNoObject || e.id < best))) {
        best = e.id;
        best_d = d;
      }
      const Vec2 u = e.pos - v.position;
      const double beyond = dot(tv, u) - 0.5 * dot(u, u);
      if (beyond > 0.0) {
        const double lb = beyond * e.inv_len;
        if (lb * lb > region_lb2) region_lb2 = lb * lb;
      }
    }
    // The next hop is usually the best Voronoi neighbour: start pulling
    // its node and edge slot in while the stop conditions are evaluated
    // (the slot address needs no pointer chase).
    if (best != kNoObject) {
      __builtin_prefetch(&nodes_[best]);
      const char* next_slot = reinterpret_cast<const char*>(&edge_slots_[best]);
      __builtin_prefetch(next_slot);
      __builtin_prefetch(next_slot + 64);
      __builtin_prefetch(next_slot + 128);
      __builtin_prefetch(next_slot + 192);
    }

    if (d2_target_cur <= dmin2) {
      // dmin stop condition: the close neighbourhood resolves the rest.
      // Report it as such only when the target is outside cur's region
      // (otherwise this is an ordinary arrival).
      return {kNoObject, true, region_lb2 > 0.0};
    }
    if (!(9.0 * region_lb2 > d2_target_cur)) {
      // The cheap bound cannot certify d(region, target) > d/3: evaluate
      // the exact stop condition of the paper.
      const Vec2 z = distance_to_region(cur, target);
      if (!(9.0 * dist2(z, target) > d2_target_cur)) {
        return {kNoObject, true, false};
      }
    }

    // Close neighbours and long links only matter for the greedy step, and
    // only once the stop conditions have failed.
    if (config_.use_close_neighbors || config_.use_long_links) {
      const auto consider = [&](ObjectId o) {
        if (o < 0 || o == cur) return;  // kNoObject or self
        // Dangling entries (crashed peers) carry NaN positions: every
        // comparison below is false, so they are skipped -- the greedy
        // step only forwards to peers that would answer.
        const double d = dist2(pos_[o], target);
        if (d < best_d || (d == best_d && (best == kNoObject || o < best))) {
          best = o;
          best_d = d;
        }
      };
      if (config_.use_close_neighbors) {
        for (const ObjectId o : v.cn) consider(o);
      }
      if (config_.use_long_links) {
        if (lr_in_slot) {
          consider(slot.lr0);
        } else {
          for (const LongLink& l : v.lr) consider(l.neighbor);
        }
      }
    }

    VORONET_EXPECT(best != kNoObject, "greedy step found no neighbour");
    // Greedy progress is guaranteed: if the stop condition fails, the
    // current object does not own the target's region, so some Voronoi
    // neighbour is strictly closer (Bose-Morin).
    VORONET_EXPECT(best_d < d2_target_cur, "greedy step made no progress");
    return {best, false, false};
  }
}

Overlay::RouteOutcome Overlay::route_to(ObjectId start, Vec2 target,
                                        bool count,
                                        std::vector<ObjectId>* path) const {
  VORONET_EXPECT(contains(start), "routing from an unknown object");
  ObjectId cur = start;
  std::size_t hops = 0;
  const std::size_t cap = live_ids_.size() + 64;
  const double dmin2 = dmin_ * dmin_;
  if (path != nullptr) {
    path->clear();
    path->push_back(cur);
  }
  while (true) {
    const HopOutcome h = route_hop(cur, target, dmin2);
    if (h.stop) return {cur, hops, h.stopped_by_dmin};
    cur = h.next;
    ++hops;
    if (path != nullptr) path->push_back(cur);
    if (count) metrics_.count_message(MessageKind::kRouteForward);
    VORONET_EXPECT(hops <= cap, "routing did not terminate");
  }
}

void Overlay::probe_batch(std::span<const ProbeQuery> queries,
                          std::span<RouteResult> out) const {
  VORONET_EXPECT(out.size() == queries.size(),
                 "probe_batch output span size mismatch");
  const double dmin2 = dmin_ * dmin_;
  const std::size_t cap = live_ids_.size() + 64;

  // Software pipelining: a dozen independent routes advance round-robin,
  // so each lane's next-hop cache misses resolve while the other lanes
  // compute.  Single-lane routing serialises one miss chain per hop; the
  // rotation keeps many chains in flight on one core.
  struct Lane {
    std::size_t qi = 0;
    ObjectId cur = kNoObject;
    std::size_t hops = 0;
    bool active = false;
  };
  constexpr std::size_t kLanes = 16;
  Lane lanes[kLanes];
  std::size_t next_q = 0;
  std::size_t active = 0;

  const auto feed = [&](Lane& lane) {
    if (next_q >= queries.size()) {
      lane.active = false;
      return false;
    }
    const ProbeQuery& q = queries[next_q];
    VORONET_EXPECT(contains(q.from), "routing from an unknown object");
    lane = {next_q, q.from, 0, true};
    ++next_q;
    __builtin_prefetch(&nodes_[q.from]);
    const char* s = reinterpret_cast<const char*>(&edge_slots_[q.from]);
    __builtin_prefetch(s);
    __builtin_prefetch(s + 64);
    __builtin_prefetch(s + 128);
    __builtin_prefetch(s + 192);
    return true;
  };
  for (auto& lane : lanes) {
    if (feed(lane)) ++active;
  }

  while (active > 0) {
    for (auto& lane : lanes) {
      if (!lane.active) continue;
      const Vec2 target = queries[lane.qi].target;
      const HopOutcome h = route_hop(lane.cur, target, dmin2);
      if (!h.stop) {
        lane.cur = h.next;
        ++lane.hops;
        VORONET_EXPECT(lane.hops <= cap, "routing did not terminate");
        continue;
      }
      const ObjectId owner = dt_.nearest(target, lane.cur);
      out[lane.qi] = {owner, lane.hops, h.stopped_by_dmin};
      if (!feed(lane)) --active;
    }
  }
}

RouteResult Overlay::probe_path(ObjectId from, Vec2 target,
                                std::vector<ObjectId>& path) const {
  const RouteOutcome rt = route_to(from, target, /*count=*/false, &path);
  const ObjectId owner = dt_.nearest(target, rt.terminal);
  return {owner, rt.hops, rt.stopped_by_dmin};
}

RouteResult Overlay::probe(ObjectId from, Vec2 target) const {
  const RouteOutcome rt = route_to(from, target, /*count=*/false);
  const ObjectId owner = dt_.nearest(target, rt.terminal);
  return {owner, rt.hops, rt.stopped_by_dmin};
}

std::vector<ObjectId> Overlay::k_nearest(ObjectId from, Vec2 p,
                                         std::size_t k) const {
  const RouteOutcome rt = route_to(from, p, /*count=*/false);
  std::vector<ObjectId> out;
  dt_.k_nearest(p, k, out, rt.terminal);
  return out;
}

RouteResult Overlay::query(ObjectId from, Vec2 target) {
  const std::uint64_t msgs_before = metrics_.total_messages();
  const RouteOutcome rt = route_to(from, target, /*count=*/true);
  const ObjectId owner = resolve_owner_with_fictives(rt.terminal, target);
  metrics_.count_message(MessageKind::kQueryAnswer);
  metrics_.record_operation(OperationKind::kQuery, rt.hops,
                            metrics_.total_messages() - msgs_before);
  return {owner, rt.hops, rt.stopped_by_dmin};
}

// ---------------------------------------------------------------------------
// Fictive-object resolution (Algorithms 2 and 4)
// ---------------------------------------------------------------------------

ObjectId Overlay::resolve_owner_with_fictives(ObjectId terminal,
                                              Vec2 target) {
  std::vector<ObjectId> affected;
  const auto absorb_affected = [&] {
    for (const ObjectId a : dt_.last_affected()) affected.push_back(a);
    metrics_.count_message(MessageKind::kVoronoiUpdate,
                           dt_.last_affected().size());
  };

  // Fictive object z = DistanceToRegion(target) inside the terminal's
  // region (Lemma 4 guarantees the subsequent insertion of the target is
  // local to z).
  const Vec2 z = distance_to_region(terminal, target);
  ObjectId zid = kNoObject;
  if (z != target) {
    const auto out = dt_.insert(z, terminal);
    if (out.created) {
      zid = out.vertex;
      absorb_affected();
    }
  }

  ObjectId owner = kNoObject;
  const auto out_t = dt_.insert(target, zid != kNoObject ? zid : terminal);
  if (!out_t.created) {
    // The target position is an existing vertex.  If it is the fictive z
    // (z == target was excluded, so this means a live object sits there),
    // that object owns its own position.
    owner = out_t.vertex;
    VORONET_EXPECT(owner != zid, "fictive vertex aliased the target");
  } else {
    const ObjectId tid = out_t.vertex;
    absorb_affected();
    // Remove the helper z first: with z still present the nearest real
    // object need not be a Delaunay neighbour of the target vertex (the
    // fictive can shadow it).  Algorithm 4 removes z before selecting the
    // owner; we follow it for Algorithm 2 as well (see DESIGN.md).
    if (zid != kNoObject) {
      dt_.remove(zid);
      zid = kNoObject;
      absorb_affected();
    }
    double best = std::numeric_limits<double>::infinity();
    for (const ObjectId y : dt_.neighbors(tid)) {
      if (!contains(y)) continue;  // skip anything fictive
      const double d = dist2(nodes_[y].view.position, target);
      if (d < best || (d == best && y < owner)) {
        owner = y;
        best = d;
      }
    }
    dt_.remove(tid);
    absorb_affected();
  }
  if (zid != kNoObject) {
    dt_.remove(zid);
    absorb_affected();
  }

  refresh_views(affected, /*count=*/false);
  VORONET_EXPECT(owner != kNoObject, "owner resolution failed");
  VORONET_DCHECK(owner == dt_.nearest(target, owner));
  return owner;
}

// ---------------------------------------------------------------------------
// Join (Algorithms 1 and 2)
// ---------------------------------------------------------------------------

ObjectId Overlay::insert(Vec2 p) {
  if (live_ids_.empty()) {
    const std::uint64_t msgs_before = metrics_.total_messages();
    const auto out = dt_.insert(p);
    VORONET_EXPECT(out.created, "bootstrap insertion failed");
    const ObjectId x = out.vertex;
    activate_object(x, p);
    establish_long_links(x);
    metrics_.record_operation(OperationKind::kJoin, 0,
                              metrics_.total_messages() - msgs_before);
    return x;
  }
  return insert(p, random_object(rng_));
}

ObjectId Overlay::insert(Vec2 p, ObjectId gateway) {
  VORONET_EXPECT(p.x >= 0.0 && p.x <= 1.0 && p.y >= 0.0 && p.y <= 1.0,
                 "object attributes must lie in the unit square");
  const std::uint64_t msgs_before = metrics_.total_messages();

  // Greedy route towards the new position (AddObject's Spawn chain).
  const RouteOutcome rt = route_to(gateway, p, /*count=*/true);

  std::vector<ObjectId> affected;
  const auto absorb_affected = [&] {
    for (const ObjectId a : dt_.last_affected()) affected.push_back(a);
    metrics_.count_message(MessageKind::kVoronoiUpdate,
                           dt_.last_affected().size());
  };

  // Fictive object z (skipped when the terminal already owns p's region).
  const Vec2 z = distance_to_region(rt.terminal, p);
  ObjectId zid = kNoObject;
  if (z != p) {
    const auto out = dt_.insert(z, rt.terminal);
    if (out.created) {
      zid = out.vertex;
      absorb_affected();
    }
  }

  const auto out_p = dt_.insert(p, zid != kNoObject ? zid : rt.terminal);
  if (!out_p.created) {
    // An object already sits at p: undo the fictive and return it
    // (positions are identifiers in an object network).
    if (zid != kNoObject) {
      dt_.remove(zid);
      absorb_affected();
    }
    refresh_views(affected, /*count=*/false);
    return out_p.vertex;
  }
  absorb_affected();
  const ObjectId x = out_p.vertex;

  if (zid != kNoObject) {
    dt_.remove(zid);
    absorb_affected();
  }

  activate_object(x, p);

  refresh_views(affected, /*count=*/false);
  materialize_object(x);
  establish_long_links(x);

  metrics_.record_operation(OperationKind::kJoin, rt.hops,
                            metrics_.total_messages() - msgs_before);
  return x;
}

void Overlay::bind_long_link(ObjectId origin, std::uint32_t link_index,
                             ObjectId neighbor) {
  nodes_[origin].view.lr[link_index].neighbor = neighbor;
  if (link_index == 0) edge_slots_[origin].lr0 = neighbor;
  touch_lr(origin);
}

void Overlay::activate_object(ObjectId o, Vec2 p) {
  ensure_slot(o);
  nodes_[o] = Node{};
  nodes_[o].live = true;
  nodes_[o].view.position = p;
  pos_[o] = p;
  live_pos_.resize(std::max<std::size_t>(live_pos_.size(),
                                         static_cast<std::size_t>(o) + 1));
  live_pos_[o] = static_cast<std::uint32_t>(live_ids_.size());
  live_ids_.push_back(o);
  oracle_.insert(static_cast<std::uint32_t>(o), p);
}

void Overlay::deactivate_object(ObjectId o, Vec2 old_pos) {
  oracle_.remove(static_cast<std::uint32_t>(o), old_pos);
  nodes_[o].live = false;
  pos_[o] = {std::numeric_limits<double>::quiet_NaN(),
             std::numeric_limits<double>::quiet_NaN()};
  edge_slots_[o].count = 0;
  edge_slots_[o].lr0 = kNoObject;
  const std::uint32_t idx = live_pos_[o];
  live_pos_[live_ids_.back()] = idx;
  live_ids_[idx] = live_ids_.back();
  live_ids_.pop_back();
}

void Overlay::track_view_changes(bool on) {
  track_views_ = on;
  if (!on) touched_ = TouchedViews{};
}

Overlay::TouchedViews Overlay::take_touched_views() {
  TouchedViews out = std::move(touched_);
  touched_ = TouchedViews{};
  for (auto* list : {&out.vn, &out.cn, &out.lr}) {
    std::sort(list->begin(), list->end());
    list->erase(std::unique(list->begin(), list->end()), list->end());
    list->erase(std::remove_if(list->begin(), list->end(),
                               [&](ObjectId o) { return !contains(o); }),
                list->end());
  }
  return out;
}

void Overlay::rebuild_vn_geom(ObjectId o) {
  NodeView& view = nodes_[o].view;
  view.vn_geom.clear();
  view.vn_geom.reserve(view.vn.size());
  for (const ObjectId nb : view.vn) {
    view.vn_geom.push_back(make_vn_edge(view.position, pos_[nb], nb));
  }
  EdgeSlot& slot = edge_slots_[o];
  slot.count = static_cast<std::uint32_t>(view.vn_geom.size());
  const std::size_t n = std::min<std::size_t>(slot.count, kInlineVnEdges);
  for (std::size_t i = 0; i < n; ++i) slot.e[i] = view.vn_geom[i];
}

void Overlay::materialize_object(ObjectId x) {
  Node& nx = nodes_[x];
  nx.view.vn.clear();
  dt_.append_neighbors(x, nx.view.vn);
  std::sort(nx.view.vn.begin(), nx.view.vn.end());
  rebuild_vn_geom(x);
  touch_vn(x);
  touch_cn(x);

  // Close neighbours (Lemma 1): candidates are the Voronoi neighbours and
  // their vn/cn members; each neighbour answers one gathering request.
  const double dmin2 = dmin_ * dmin_;
  std::vector<ObjectId> candidates;
  for (const ObjectId y : nx.view.vn) {
    metrics_.count_message(MessageKind::kCloseNeighbor);
    candidates.push_back(y);
    const NodeView& vy = nodes_[y].view;
    candidates.insert(candidates.end(), vy.vn.begin(), vy.vn.end());
    candidates.insert(candidates.end(), vy.cn.begin(), vy.cn.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const ObjectId c : candidates) {
    if (c == x || !contains(c)) continue;
    if (dist2(nodes_[c].view.position, nx.view.position) <= dmin2) {
      insert_sorted(nx.view.cn, c);
      insert_sorted(nodes_[c].view.cn, x);  // symmetric declaration
      touch_cn(c);
      metrics_.count_message(MessageKind::kCloseNeighbor);
    }
  }

  // Back-long-range takeover: x now owns the region around its position;
  // neighbours hand over every entry whose target is closer to x.
  for (const ObjectId y : nx.view.vn) {
    auto& yblr = nodes_[y].view.blr;
    for (std::size_t i = 0; i < yblr.size();) {
      const BackLink& e = yblr[i];
      if (dist2(nx.view.position, e.target) <
          dist2(nodes_[y].view.position, e.target)) {
        bind_long_link(e.origin, e.link_index, x);
        nx.view.blr.push_back(e);
        yblr[i] = yblr.back();
        yblr.pop_back();
        metrics_.count_message(MessageKind::kBlrTransfer);
        metrics_.count_message(MessageKind::kLongLinkBind);
      } else {
        ++i;
      }
    }
  }
}

void Overlay::establish_long_links(ObjectId x) {
  if (!config_.use_long_links) return;
  for (std::uint32_t j = 0; j < config_.long_links; ++j) {
    const Vec2 target =
        choose_long_range_target(nodes_[x].view.position, dmin_, rng_);
    // SearchLongLink: greedy route from x, then fictive resolution.
    const RouteOutcome rt = route_to(x, target, /*count=*/true);
    const ObjectId owner = resolve_owner_with_fictives(rt.terminal, target);
    nodes_[x].view.lr.push_back({target, owner});
    if (j == 0) edge_slots_[x].lr0 = owner;
    touch_lr(x);
    // The back entry is kept even when the target currently falls in x's
    // own region: a later join may take the region over, and the entry is
    // what lets the takeover re-bind the link.
    nodes_[owner].view.blr.push_back({x, j, target});
    metrics_.count_message(MessageKind::kLongLinkBind);
  }
}

void Overlay::refresh_views(const std::vector<ObjectId>& affected,
                            bool count) {
  thread_local std::vector<ObjectId> uniq;
  uniq = affected;
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  for (const ObjectId o : uniq) {
    if (!contains(o)) continue;  // fictive or already-departed vertex
    Node& n = nodes_[o];
    n.view.vn.clear();
    dt_.append_neighbors(o, n.view.vn);
    std::sort(n.view.vn.begin(), n.view.vn.end());
    rebuild_vn_geom(o);
    touch_vn(o);
    if (count) metrics_.count_message(MessageKind::kVoronoiUpdate);
  }
}

// ---------------------------------------------------------------------------
// Leave (RemoveVoronoiRegion and delegation, section 4.2.2)
// ---------------------------------------------------------------------------

void Overlay::remove(ObjectId o) {
  VORONET_EXPECT(contains(o), "removing an unknown object");
  const std::uint64_t msgs_before = metrics_.total_messages();
  Node& n = nodes_[o];

  // Notify close neighbours of the departure (symmetric sets).
  for (const ObjectId c : n.view.cn) {
    erase_sorted(nodes_[c].view.cn, o);
    touch_cn(c);
    metrics_.count_message(MessageKind::kLeaveNotify);
  }
  n.view.cn.clear();

  // Retract o's own long links from their targets' back-lists.  Links
  // bound to o itself live in o's own blr and die with it (skipped in the
  // delegation below).
  for (std::uint32_t j = 0; j < n.view.lr.size(); ++j) {
    const ObjectId w = n.view.lr[j].neighbor;
    if (w == o || w == kNoObject) continue;
    auto& wblr = nodes_[w].view.blr;
    const auto it = std::find_if(wblr.begin(), wblr.end(),
                                 [&](const BackLink& e) {
                                   return e.origin == o && e.link_index == j;
                                 });
    VORONET_EXPECT(it != wblr.end(), "dangling long link on departure");
    *it = wblr.back();
    wblr.pop_back();
    metrics_.count_message(MessageKind::kLeaveNotify);
  }

  // Entries to delegate, and the neighbour set that receives them.
  const std::vector<BackLink> entries = std::move(n.view.blr);
  const std::vector<ObjectId> old_vn = n.view.vn;
  const Vec2 old_pos = n.view.position;

  // Geometric removal + view refresh of the former neighbours.
  deactivate_object(o, old_pos);

  dt_.remove(o);
  metrics_.count_message(MessageKind::kVoronoiUpdate,
                         dt_.last_affected().size());
  refresh_views(dt_.last_affected(), /*count=*/false);

  // Delegate each back entry to the Voronoi neighbour now owning its
  // target (the paper's rule: the vn member closest to the target).
  for (const BackLink& e : entries) {
    if (e.origin == o) continue;  // o's own self-bound links die with it
    VORONET_EXPECT(contains(e.origin), "back link from a dead origin");
    ObjectId heir = kNoObject;
    double best = std::numeric_limits<double>::infinity();
    for (const ObjectId y : old_vn) {
      if (!contains(y)) continue;
      const double d = dist2(nodes_[y].view.position, e.target);
      if (d < best || (d == best && y < heir)) {
        heir = y;
        best = d;
      }
    }
    VORONET_EXPECT(heir != kNoObject, "no heir for a delegated long link");
    VORONET_DCHECK(heir == dt_.nearest(e.target, heir));
    nodes_[heir].view.blr.push_back(e);
    bind_long_link(e.origin, e.link_index, heir);
    metrics_.count_message(MessageKind::kBlrTransfer);
    metrics_.count_message(MessageKind::kLongLinkBind);
  }

  metrics_.record_operation(OperationKind::kLeave, 0,
                            metrics_.total_messages() - msgs_before);
}

// ---------------------------------------------------------------------------
// Failure injection and repair
// ---------------------------------------------------------------------------

void Overlay::crash(ObjectId o) {
  VORONET_EXPECT(contains(o), "crashing an unknown object");
  Node& n = nodes_[o];

  // The object's own state disappears silently: no cn notifications, no
  // back-long-range delegation, no lr retraction.  Everything referencing
  // it elsewhere now dangles.
  n.view = NodeView{};
  deactivate_object(o, dt_.position(o));

  // Neighbours detect the failure and heal their local cells (the one
  // repair that cannot wait: the tessellation must stay a tessellation).
  dt_.remove(o);
  metrics_.count_message(MessageKind::kVoronoiUpdate,
                         dt_.last_affected().size());
  refresh_views(dt_.last_affected(), /*count=*/false);
}

std::size_t Overlay::repair_dangling() {
  std::size_t repaired = 0;
  // Snapshot the id list: re-binding long links inserts fictive objects,
  // which must not invalidate the iteration.
  const std::vector<ObjectId> ids = live_ids_;
  for (const ObjectId o : ids) {
    if (!contains(o)) continue;
    Node& n = nodes_[o];

    // Drop dead close neighbours (failure detection on first contact).
    auto& cn = n.view.cn;
    const std::size_t before = cn.size();
    cn.erase(std::remove_if(cn.begin(), cn.end(),
                            [&](ObjectId c) { return !contains(c); }),
             cn.end());
    repaired += before - cn.size();
    if (before != cn.size()) {
      touch_cn(o);
      metrics_.count_message(MessageKind::kLeaveNotify, before - cn.size());
    }

    // Purge back entries whose origin crashed (their forward links died
    // with the origin).
    auto& blr = n.view.blr;
    const std::size_t blr_before = blr.size();
    blr.erase(std::remove_if(blr.begin(), blr.end(),
                             [&](const BackLink& e) {
                               return !contains(e.origin);
                             }),
              blr.end());
    repaired += blr_before - blr.size();
    if (blr_before != blr.size()) {
      metrics_.count_message(MessageKind::kLeaveNotify,
                             blr_before - blr.size());
    }

    // Re-bind long links whose holder crashed: same target point, new
    // owner found with the ordinary SearchLongLink machinery.
    for (std::uint32_t j = 0; j < n.view.lr.size(); ++j) {
      const ObjectId holder = n.view.lr[j].neighbor;
      if (holder != kNoObject && contains(holder)) continue;
      const Vec2 target = n.view.lr[j].target;
      const RouteOutcome rt = route_to(o, target, /*count=*/true);
      const ObjectId owner = resolve_owner_with_fictives(rt.terminal, target);
      bind_long_link(o, j, owner);
      nodes_[owner].view.blr.push_back({o, j, target});
      metrics_.count_message(MessageKind::kLongLinkBind);
      ++repaired;
    }
  }
  return repaired;
}

// ---------------------------------------------------------------------------
// Capacity adaptation (paper, section 7)
// ---------------------------------------------------------------------------

void Overlay::rebalance_capacity(std::size_t new_n_max,
                                 std::size_t dense_threshold) {
  VORONET_EXPECT(new_n_max >= config_.n_max,
                 "capacity can only grow (shrinking would require re-"
                 "gathering close neighbourhoods)");
  const double new_dmin =
      config_.dmin_override > 0.0 ? config_.dmin_override
                                  : dmin_for(config_.dmin_rule, new_n_max);
  VORONET_EXPECT(new_dmin <= dmin_, "dmin must shrink as capacity grows");

  // Which objects redraw their long links: all of them (simple scheme) or
  // only those whose close neighbourhood got too dense (refined scheme).
  std::vector<ObjectId> redraw;
  for (const ObjectId o : live_ids_) {
    if (dense_threshold == 0 ||
        nodes_[o].view.cn.size() > dense_threshold) {
      redraw.push_back(o);
    }
  }

  // Shrink every close neighbourhood to the new radius (symmetric drops).
  config_.n_max = new_n_max;
  dmin_ = new_dmin;
  const double dmin2 = dmin_ * dmin_;
  for (const ObjectId o : live_ids_) {
    Node& n = nodes_[o];
    auto& cn = n.view.cn;
    for (std::size_t i = 0; i < cn.size();) {
      const ObjectId c = cn[i];
      if (dist2(nodes_[c].view.position, n.view.position) > dmin2) {
        // Symmetric drop: remove both directions when first encountered
        // (the peer's entry is already gone if the pair was handled from
        // the other side).
        if (erase_sorted_if_present(nodes_[c].view.cn, o)) {
          touch_cn(c);
          metrics_.count_message(MessageKind::kCloseNeighbor);
        }
        cn.erase(cn.begin() + static_cast<std::ptrdiff_t>(i));
        touch_cn(o);
      } else {
        ++i;
      }
    }
  }

  // Redraw long links against the new Choose-LRT bounds.
  for (const ObjectId o : redraw) {
    if (!contains(o)) continue;
    Node& n = nodes_[o];
    for (std::uint32_t j = 0; j < n.view.lr.size(); ++j) {
      const ObjectId holder = n.view.lr[j].neighbor;
      if (holder == kNoObject || !contains(holder)) continue;
      auto& hblr = nodes_[holder].view.blr;
      const auto it = std::find_if(hblr.begin(), hblr.end(),
                                   [&](const BackLink& e) {
                                     return e.origin == o &&
                                            e.link_index == j;
                                   });
      VORONET_EXPECT(it != hblr.end(), "missing back entry on rebalance");
      *it = hblr.back();
      hblr.pop_back();
      metrics_.count_message(MessageKind::kBlrTransfer);
    }
    n.view.lr.clear();
    edge_slots_[o].lr0 = kNoObject;
    establish_long_links(o);
  }
}

// ---------------------------------------------------------------------------
// Invariant audit
// ---------------------------------------------------------------------------

void Overlay::check_invariants(bool check_delaunay) const {
  dt_.validate(check_delaunay);
  VORONET_EXPECT(dt_.size() == live_ids_.size(),
                 "tessellation / object count mismatch");

  const double dmin2 = dmin_ * dmin_;
  std::vector<spatial::GridIndex::Id> ball;
  for (const ObjectId o : live_ids_) {
    const Node& n = nodes_[o];
    VORONET_EXPECT(n.live, "live list contains a dead node");

    // vn caches must equal the tessellation's adjacency.
    auto expected_vn = dt_.neighbors(o);
    std::sort(expected_vn.begin(), expected_vn.end());
    VORONET_EXPECT(n.view.vn == expected_vn,
                   "vn cache diverges from the tessellation");

    // The routing-geometry cache must mirror vn bit-for-bit (same
    // construction formula, immutable positions).
    VORONET_EXPECT(n.view.vn_geom.size() == n.view.vn.size(),
                   "vn_geom cache out of sync with vn");
    for (std::size_t i = 0; i < n.view.vn.size(); ++i) {
      const VnEdge expect = make_vn_edge(
          n.view.position, nodes_[n.view.vn[i]].view.position, n.view.vn[i]);
      VORONET_EXPECT(vn_edge_equal(n.view.vn_geom[i], expect),
                     "vn_geom cache diverges from the tessellation");
    }

    // The dense routing mirrors must agree with the views they shadow.
    VORONET_EXPECT(pos_[o] == n.view.position,
                   "dense position mirror diverged");
    const EdgeSlot& slot = edge_slots_[o];
    VORONET_EXPECT(slot.count == n.view.vn_geom.size(),
                   "edge slot count out of sync");
    VORONET_EXPECT(slot.lr0 == (n.view.lr.empty() ? kNoObject
                                                  : n.view.lr[0].neighbor),
                   "edge slot lr0 mirror out of sync");
    for (std::size_t i = 0;
         i < std::min<std::size_t>(slot.count, kInlineVnEdges); ++i) {
      VORONET_EXPECT(vn_edge_equal(slot.e[i], n.view.vn_geom[i]),
                     "edge slot diverges from vn_geom");
    }

    // cn must equal the oracle's dmin-ball (minus the object itself).
    ball.clear();
    oracle_.range(n.view.position, dmin_, ball);
    std::vector<ObjectId> expected_cn;
    for (const auto id : ball) {
      const auto other = static_cast<ObjectId>(id);
      if (other == o) continue;
      if (dist2(nodes_[other].view.position, n.view.position) <= dmin2) {
        expected_cn.push_back(other);
      }
    }
    std::sort(expected_cn.begin(), expected_cn.end());
    VORONET_EXPECT(n.view.cn == expected_cn,
                   "cn set diverges from the dmin ball (Lemma 1)");

    // cn symmetry.
    for (const ObjectId c : n.view.cn) {
      const auto& peer = node_checked(c).view.cn;
      VORONET_EXPECT(std::binary_search(peer.begin(), peer.end(), o),
                     "cn link not symmetric");
    }

    // Long links: bound to the current owner of their target.
    if (config_.use_long_links) {
      VORONET_EXPECT(n.view.lr.size() == config_.long_links,
                     "wrong number of long links");
    }
    for (std::size_t j = 0; j < n.view.lr.size(); ++j) {
      const LongLink& l = n.view.lr[j];
      VORONET_EXPECT(contains(l.neighbor), "long link to a dead object");
      const ObjectId true_owner = dt_.nearest(l.target, l.neighbor);
      VORONET_EXPECT(l.neighbor == true_owner,
                     "long link not bound to the target's region owner");
      const auto& blr = nodes_[l.neighbor].view.blr;
      const bool backed = std::any_of(
          blr.begin(), blr.end(), [&](const BackLink& e) {
            return e.origin == o && e.link_index == j;
          });
      VORONET_EXPECT(backed, "long link without back entry");
    }

    // Back entries must be the exact inverse of the long links.
    for (const BackLink& e : n.view.blr) {
      VORONET_EXPECT(contains(e.origin), "back link from dead origin");
      const auto& lr = nodes_[e.origin].view.lr;
      VORONET_EXPECT(e.link_index < lr.size(), "back link index out of range");
      VORONET_EXPECT(lr[e.link_index].neighbor == o,
                     "back link does not match the forward link");
      VORONET_EXPECT(lr[e.link_index].target == e.target,
                     "back link target drifted");
    }
  }
}

}  // namespace voronet
