// Churn driver: runs joins, leaves and queries against an overlay over
// simulated time through the discrete-event engine.
//
// The paper analyses join/leave costs (section 4.2) but evaluates a
// statically grown overlay; this driver extends the evaluation to sustained
// membership churn -- used by bench_table_maintenance and the churn
// example to demonstrate that view invariants hold and maintenance costs
// stay O(1)-ish per event at any churn rate.
#pragma once

#include <cstddef>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

namespace voronet {

struct ChurnConfig {
  double join_rate = 1.0;    ///< joins per unit of simulated time
  double leave_rate = 1.0;   ///< leaves per unit time
  double query_rate = 4.0;   ///< queries per unit time
  double duration = 100.0;   ///< simulated time horizon
  std::size_t min_population = 8;  ///< leaves are suppressed below this
  std::uint64_t seed = 7;
};

struct ChurnReport {
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t queries = 0;
  std::size_t final_population = 0;
  double simulated_time = 0.0;
  std::size_t events_processed = 0;
};

/// Run Poisson-ish churn (exponential inter-arrival per event class) on an
/// existing overlay using `points` as the join workload.
ChurnReport run_churn(Overlay& overlay, workload::PointGenerator& points,
                      const ChurnConfig& config);

}  // namespace voronet
