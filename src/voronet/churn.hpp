// Churn driver: runs joins, leaves and queries against an overlay over
// simulated time through the discrete-event engine.
//
// The paper analyses join/leave costs (section 4.2) but evaluates a
// statically grown overlay; this driver extends the evaluation to sustained
// membership churn -- used by bench_table_maintenance and the churn
// example to demonstrate that view invariants hold and maintenance costs
// stay O(1)-ish per event at any churn rate.
#pragma once

#include <array>
#include <cstddef>

#include "common/rng.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

namespace voronet {

struct ChurnConfig {
  double join_rate = 1.0;    ///< joins per unit of simulated time
  double leave_rate = 1.0;   ///< leaves per unit time
  double query_rate = 4.0;   ///< queries per unit time
  double duration = 100.0;   ///< simulated time horizon
  std::size_t min_population = 8;  ///< leaves are suppressed below this
  std::uint64_t seed = 7;
};

struct ChurnReport {
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t queries = 0;
  std::size_t final_population = 0;
  double simulated_time = 0.0;
  std::size_t events_processed = 0;

  /// Maintenance messages generated during the churn phase, per protocol
  /// kind (delta of the overlay's sim::Metrics counters over the run), so
  /// callers can report message costs without resetting the overlay's
  /// cumulative counters around the call.
  std::array<std::uint64_t, sim::kMessageKindCount> messages{};
  std::uint64_t total_messages = 0;

  [[nodiscard]] std::uint64_t messages_of(sim::MessageKind kind) const {
    return messages[static_cast<std::size_t>(kind)];
  }
  /// Mean messages per churn event (join + leave + query).
  [[nodiscard]] double messages_per_event() const {
    const std::size_t events = joins + leaves + queries;
    return events == 0
               ? 0.0
               : static_cast<double>(total_messages) /
                     static_cast<double>(events);
  }
};

/// Run Poisson-ish churn (exponential inter-arrival per event class) on an
/// existing overlay using `points` as the join workload.
ChurnReport run_churn(Overlay& overlay, workload::PointGenerator& points,
                      const ChurnConfig& config);

}  // namespace voronet
