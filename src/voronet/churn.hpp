// Sequential churn driver: runs joins, leaves and queries against an
// overlay over simulated time through the discrete-event engine.
//
// The paper analyses join/leave costs (section 4.2) but evaluates a
// statically grown overlay; this driver extends the evaluation to sustained
// membership churn -- used by bench_table_maintenance and the churn
// example to demonstrate that view invariants hold and maintenance costs
// stay O(1)-ish per event at any churn rate.
//
// The driver speaks the scenario event vocabulary
// (src/scenario/events.hpp): run_events() interprets the membership /
// query subset (join bursts, leaves, query streams -- count-based or
// Poisson) directly against the Overlay, and ChurnConfig survives as the
// named rate parameterization that expands into those events via
// events().  The message-level counterpart of the same vocabulary is
// scenario::Runner; one timeline can drive either layer.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "scenario/events.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "voronet/overlay.hpp"
#include "workload/distributions.hpp"

namespace voronet {

struct ChurnConfig {
  double join_rate = 1.0;    ///< joins per unit of simulated time
  double leave_rate = 1.0;   ///< leaves per unit time
  double query_rate = 4.0;   ///< queries per unit time
  double duration = 100.0;   ///< simulated time horizon
  std::size_t min_population = 8;  ///< leaves are suppressed below this
  std::uint64_t seed = 7;

  /// The equivalent timeline in the unified event vocabulary: three
  /// Poisson streams over [0, duration].
  [[nodiscard]] std::vector<scenario::Event> events() const {
    return {
        scenario::Event::join_poisson(0.0, join_rate, duration),
        scenario::Event::leave_poisson(0.0, leave_rate, duration,
                                       min_population),
        scenario::Event::query_poisson(0.0, query_rate, duration),
    };
  }
};

struct ChurnReport {
  std::size_t joins = 0;
  std::size_t leaves = 0;
  std::size_t queries = 0;
  std::size_t final_population = 0;
  double simulated_time = 0.0;
  std::size_t events_processed = 0;

  /// Maintenance messages generated during the churn phase, per protocol
  /// kind (delta of the overlay's sim::Metrics counters over the run), so
  /// callers can report message costs without resetting the overlay's
  /// cumulative counters around the call.
  std::array<std::uint64_t, sim::kMessageKindCount> messages{};
  std::uint64_t total_messages = 0;

  [[nodiscard]] std::uint64_t messages_of(sim::MessageKind kind) const {
    return messages[static_cast<std::size_t>(kind)];
  }
  /// Mean messages per churn event (join + leave + query).
  [[nodiscard]] double messages_per_event() const {
    const std::size_t events = joins + leaves + queries;
    return events == 0
               ? 0.0
               : static_cast<double>(total_messages) /
                     static_cast<double>(events);
  }
};

/// Interpret a timeline of scenario events against an existing overlay,
/// drawing join positions from `points` and every stochastic choice from
/// `seed`.  Supported kinds: kJoinBurst, kLeave, kQueryStream (queries
/// execute as greedy point routes to a random attribute point) and the
/// no-op barrier kQuiesce; crash / partition / region-query events need
/// the message layer and are rejected (use scenario::Runner).
ChurnReport run_events(Overlay& overlay, workload::PointGenerator& points,
                       const std::vector<scenario::Event>& events,
                       std::uint64_t seed);

/// Run Poisson-ish churn (exponential inter-arrival per event class) on an
/// existing overlay using `points` as the join workload.  Thin wrapper:
/// expands the config into events() and interprets them.
ChurnReport run_churn(Overlay& overlay, workload::PointGenerator& points,
                      const ChurnConfig& config);

}  // namespace voronet
