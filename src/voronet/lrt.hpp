// Choose-LRT (paper, Algorithm 3): draw the long-range target of an
// object.  The radial density is proportional to 1/d (log-uniform radius
// between dmin and sqrt(2)), which combined with the uniform angle yields
// the 2-D area density dS / (K d^2) of Lemma 2 -- the Kleinberg harmonic
// distribution generalised to continuous space.
#pragma once

#include "common/rng.hpp"
#include "geometry/vec2.hpp"

namespace voronet {

/// One long-range target for an object at `from`.  The target may fall
/// outside the unit square (the link will still bind to the closest
/// object, per section 4.3.2).
Vec2 choose_long_range_target(Vec2 from, double dmin, Rng& rng);

/// Normalisation constant K of Lemma 2 for the given dmin:
/// K = 2 pi ln(sqrt(2)/dmin).
double lemma2_normalisation(double dmin);

/// Closed-form probability that the target lands within distance [r1, r2]
/// of the source (for the Monte-Carlo validation of Lemma 2).
double radial_cdf(double dmin, double r1, double r2);

}  // namespace voronet
