// The VoroNet overlay (the paper's primary contribution).
//
// Objects live in the unit square; each object's view holds
//   * vn(o)   -- its Voronoi (Delaunay) neighbours,
//   * cn(o)   -- every object within dmin (routing termination in clusters),
//   * LRn(o)  -- k long-range links drawn by Choose-LRT, each pointing to
//                the object whose region contains the target point,
//   * BLRn(o) -- reverse entries for long links targetting o's region
//                (used only for maintenance, never for routing).
//
// The overlay is a sequential discrete simulation of the distributed
// protocol: every join / leave / query runs the paper's algorithms
// (greedy Route framework, fictive-object insertion, local tessellation
// updates, back-long-range delegation) and accounts each exchanged
// message in sim::Metrics.  Routing decisions consume only the view of
// the current object -- the global tessellation object serves as the
// geometric ground truth that the per-object Sugihara-Iri updates of a
// real deployment would reconstruct, and check_invariants() asserts the
// two agree after every operation (see DESIGN.md, "Substitutions").
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "geometry/delaunay.hpp"
#include "geometry/vec2.hpp"
#include "sim/metrics.hpp"
#include "spatial/grid_index.hpp"
#include "voronet/config.hpp"
#include "voronet/object_id.hpp"

namespace voronet {

/// One long-range link: the immutable target point drawn by Choose-LRT and
/// the object currently responsible for the region containing it.
struct LongLink {
  Vec2 target;
  ObjectId neighbor = kNoObject;
};

/// A back-long-range entry: `origin`'s link number `link_index` targets a
/// point inside this object's region.
struct BackLink {
  ObjectId origin = kNoObject;
  std::uint32_t link_index = 0;
  Vec2 target;
};

/// Cached routing geometry for one Voronoi neighbour: everything the
/// per-hop scan of route_to() needs without dereferencing the neighbour's
/// node or taking a square root.  Kept to 32 bytes -- the route loop is
/// memory-bound, so the bisector terms are derived from per-hop constants
/// instead of being stored.  Rebuilt whenever vn changes (positions are
/// immutable for a live object, so the cache can never silently go
/// stale); check_invariants() verifies it bit-for-bit.
struct VnEdge {
  Vec2 pos;        ///< neighbour position
  double inv_len;  ///< 1 / |pos - self position|
  ObjectId id;     ///< neighbour id (mirrors the parallel vn entry)
};

/// The view an object maintains (paper, section 3.1).  Field order is
/// perf-relevant: position, cn and lr are what the routing loop touches,
/// so they share the node's first cache line; vn / vn_geom / blr are only
/// read on view maintenance.
struct NodeView {
  Vec2 position;
  std::vector<ObjectId> cn;    ///< close neighbours within dmin (sorted)
  std::vector<LongLink> lr;    ///< k long-range links
  std::vector<ObjectId> vn;    ///< Voronoi neighbours (sorted)
  std::vector<VnEdge> vn_geom; ///< routing cache, parallel to vn
  std::vector<BackLink> blr;   ///< reverse long-range entries

  /// Total view size (the quantity the paper proves O(1) expected).
  /// vn_geom is derived data mirroring vn, not extra view state, so it
  /// does not count.
  [[nodiscard]] std::size_t degree() const {
    return vn.size() + cn.size() + lr.size() + blr.size();
  }
};

/// Result of a routed operation.
struct RouteResult {
  ObjectId owner = kNoObject;  ///< object whose region contains the target
  std::size_t hops = 0;        ///< greedy forwards (Lemma 5's step count)
  bool stopped_by_dmin = false;///< terminated through the dmin condition
};

/// One query of a batched measurement sweep (see Overlay::probe_batch).
struct ProbeQuery {
  ObjectId from = kNoObject;
  Vec2 target;
};

class Overlay {
 public:
  explicit Overlay(const OverlayConfig& config);

  // Non-copyable (owns the tessellation substrate).
  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  /// Join a new object at position p, routing from a uniformly random
  /// existing object (or bootstrapping if the overlay is empty).  If an
  /// object already sits exactly at p, its id is returned and nothing is
  /// inserted (positions identify objects).
  ObjectId insert(Vec2 p);

  /// Join routing from a specific gateway object (paper's AddObject(x)
  /// starting at a known object s).
  ObjectId insert(Vec2 p, ObjectId gateway);

  /// Leave: runs RemoveVoronoiRegion plus close-neighbour notification and
  /// back-long-range delegation.
  void remove(ObjectId o);

  // --- Failure injection ---------------------------------------------------

  /// Fail-stop crash: the object vanishes WITHOUT executing the departure
  /// protocol.  Its tessellation region is healed immediately (the
  /// simulator stand-in for the neighbours' local cell repair on failure
  /// detection), but close-neighbour entries and long links pointing at
  /// the dead object are left dangling.  Routing skips dangling entries;
  /// run repair_dangling() to restore the full invariants.
  void crash(ObjectId o);

  /// Lazy failure-detection sweep: drops dead close-neighbour entries and
  /// re-runs SearchLongLink for every long link whose holder crashed (the
  /// target point is kept, per the paper's "link points to the object
  /// responsible for the region containing this point").  Returns the
  /// number of repaired references.  All messages are accounted.
  std::size_t repair_dangling();

  // --- Capacity adaptation (paper, section 7, second perspective) -----------

  /// Re-provision for a larger maximum object count.  dmin shrinks to the
  /// new capacity's value; close-neighbour sets are re-filtered (dropping
  /// now-out-of-radius links) and long links are redrawn against the new
  /// Choose-LRT bounds.  With `dense_threshold` == 0 every object redraws
  /// (the paper's simple scheme -- the "bootstrap storm"); otherwise only
  /// objects whose close neighbourhood exceeded the threshold redraw (the
  /// paper's refined scheme).  Requires new_n_max >= the current capacity.
  void rebalance_capacity(std::size_t new_n_max,
                          std::size_t dense_threshold = 0);

  /// Full query protocol (Algorithm 4): greedy route + fictive-object
  /// resolution at the terminal; counts all messages.
  RouteResult query(ObjectId from, Vec2 target);

  /// Measurement-only greedy route: identical hop semantics to query(),
  /// but read-only (no fictive objects, no message accounting) and safe to
  /// call concurrently from measurement threads.
  [[nodiscard]] RouteResult probe(ObjectId from, Vec2 target) const;

  /// probe() over many independent queries with software-pipelined
  /// routing: a dozen routes advance round-robin, so their per-hop cache
  /// misses overlap instead of serialising -- a large single-threaded
  /// speedup for the memory-bound measurement sweeps (and it composes
  /// with parallel_for across chunks).  Results are element-for-element
  /// identical to calling probe() per query.
  void probe_batch(std::span<const ProbeQuery> queries,
                   std::span<RouteResult> out) const;

  /// probe() that also records the forwarding path (path.front() == from;
  /// path.back() == the routing terminal, which may differ from the owner
  /// when a stop condition fires early).
  RouteResult probe_path(ObjectId from, Vec2 target,
                         std::vector<ObjectId>& path) const;

  /// The greedy step: the member of vn + cn + LRn closest to the target
  /// (paper's Greedyneighbour).  Exposed for tests and benches.
  [[nodiscard]] ObjectId greedy_neighbor(ObjectId at, Vec2 target) const;

  /// The k objects closest to p, in increasing distance order: greedy
  /// route to the owner of p, then best-first expansion over Voronoi
  /// neighbourhoods (each expansion step is one overlay message in a real
  /// deployment).  Read-only and thread-safe, like probe().
  [[nodiscard]] std::vector<ObjectId> k_nearest(ObjectId from, Vec2 p,
                                                std::size_t k) const;

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::size_t size() const { return live_ids_.size(); }
  [[nodiscard]] bool contains(ObjectId o) const;
  [[nodiscard]] const NodeView& view(ObjectId o) const;
  [[nodiscard]] Vec2 position(ObjectId o) const;
  [[nodiscard]] const std::vector<ObjectId>& objects() const {
    return live_ids_;
  }
  [[nodiscard]] ObjectId random_object(Rng& rng) const;
  [[nodiscard]] double dmin() const { return dmin_; }
  [[nodiscard]] const OverlayConfig& config() const { return config_; }

  /// Ground-truth tessellation (for tests, examples and rendering).
  [[nodiscard]] const geo::DelaunayTriangulation& tessellation() const {
    return dt_;
  }

  [[nodiscard]] sim::Metrics& metrics() { return metrics_; }
  [[nodiscard]] const sim::Metrics& metrics() const { return metrics_; }

  // --- View-change tracking (protocol engine support) ----------------------

  /// Objects whose protocol-visible view components were written since the
  /// last take_touched_views().  Over-approximate: an id may appear even
  /// when a write restored the previous value (fictive-object churn does
  /// this); consumers diff against what they last read.
  struct TouchedViews {
    std::vector<ObjectId> vn;  ///< Voronoi-neighbour sets rewritten
    std::vector<ObjectId> cn;  ///< close-neighbour sets modified
    std::vector<ObjectId> lr;  ///< long links (re)bound
  };

  /// Enable/disable recording (off by default: one branch per view write).
  /// The message-level protocol engine (src/protocol) turns it on to learn
  /// which per-node local views each ground-truth operation invalidated.
  void track_view_changes(bool on);

  /// Drain the recorded sets: each list comes back sorted, deduplicated
  /// and restricted to live objects.
  TouchedViews take_touched_views();

  /// Exhaustive cross-check of every view against the tessellation and the
  /// brute-force spatial oracle; throws ContractError on any violation.
  /// O(n * degree) plus an exact-Delaunay audit -- test-suite usage.
  void check_invariants(bool check_delaunay = true) const;

  // --- Snapshots -------------------------------------------------------------

  /// Serialise the overlay structure (configuration, object positions,
  /// long-range targets) to a text stream.  Coordinates are written as
  /// hex-floats, so a round trip is bit-exact.  The RNG stream is NOT
  /// part of a snapshot: a reloaded overlay has identical structure and
  /// routing behaviour but draws fresh randomness for future joins.
  void save(std::ostream& os) const;

  /// Rebuild an overlay from a snapshot.  Views (vn, cn, long-link
  /// bindings, back links) are reconstructed from the geometry; object
  /// ids are freshly assigned (snapshots carry positions, which identify
  /// objects in VoroNet).  Throws std::runtime_error on malformed input.
  static std::unique_ptr<Overlay> load(std::istream& is);

 private:
  struct Node {
    // view first: position / cn / lr then share the node's first cache
    // line, which is all a routing hop reads; `live` is cold (accessor
    // paths only).
    NodeView view;
    bool live = false;
  };

  struct RouteOutcome {
    ObjectId terminal = kNoObject;
    std::size_t hops = 0;
    bool stopped_by_dmin = false;
  };

  /// Outcome of a single greedy hop (the body of route_to's loop).
  struct HopOutcome {
    ObjectId next = kNoObject;    ///< valid when !stop
    bool stop = false;            ///< a stop condition held at `cur`
    bool stopped_by_dmin = false; ///< which one (meaningful when stop)
  };

  /// One hop of the Route framework at `cur`: evaluates the stop
  /// conditions and the greedy choice, and prefetches the next hop's
  /// data.  Shared by route_to (sequential) and probe_batch (pipelined).
  HopOutcome route_hop(ObjectId cur, Vec2 target, double dmin2) const;

  /// The shared Route framework (Algorithm 5): greedy-forward until the
  /// 1/3-progress or dmin stop condition holds.  `count` enables message
  /// accounting (probe() passes false); `path`, when non-null, receives
  /// every visited object including the start.
  RouteOutcome route_to(ObjectId start, Vec2 target, bool count,
                        std::vector<ObjectId>* path = nullptr) const;

  /// Region owner of `target` resolved the paper's way: temporarily insert
  /// a fictive object at the terminal's closest region point and at the
  /// target, read the answer off the tessellation, then remove both.
  ObjectId resolve_owner_with_fictives(ObjectId terminal, Vec2 target);

  /// Insert the real object x (geometry + every view maintenance step of
  /// AddVoronoiRegion): vn refresh, cn gathering (Lemma 1), BLR takeover.
  void materialize_object(ObjectId x);

  /// Draw and bind the k long links of x (Algorithm 2).
  void establish_long_links(ObjectId x);

  /// Recompute the vn cache of every (live) id in `affected`, counting one
  /// update message each.
  void refresh_views(const std::vector<ObjectId>& affected, bool count);

  /// Rebuild view.vn_geom and the node's dense edge slot from view.vn
  /// (called wherever vn is assigned).
  void rebuild_vn_geom(ObjectId o);

  [[nodiscard]] Node& node(ObjectId o);
  [[nodiscard]] const Node& node_checked(ObjectId o) const;
  void ensure_slot(ObjectId o);

  /// Claim the slot of a freshly inserted object: Node state, the dense
  /// position mirror, the live list and the spatial oracle.  Single
  /// source of the liveness-transition invariant shared by the join
  /// paths and the snapshot loader.
  void activate_object(ObjectId o, Vec2 p);

  /// Inverse transition (shared tail of remove() and crash()): oracle
  /// and live-list removal, NaN position (the routing scan's dead-peer
  /// filter) and edge-slot reset.
  void deactivate_object(ObjectId o, Vec2 old_pos);

  /// DistanceToRegion of the paper, on the current tessellation.
  [[nodiscard]] Vec2 distance_to_region(ObjectId o, Vec2 p) const;

  OverlayConfig config_;
  double dmin_;
  geo::DelaunayTriangulation dt_;
  std::vector<Node> nodes_;          // indexed by ObjectId (dt vertex id)
  // Dense mirror of view.position (positions are immutable per object):
  // scattered candidate lookups in the routing hot loop read 16 bytes from
  // this array instead of pulling whole Node cache lines.
  std::vector<Vec2> pos_;

  // Dense, cache-line-aligned mirror of the first kInlineVnEdges entries
  // of view.vn_geom.  Its address depends only on the object id -- no
  // Node -> vector -> data pointer chase -- so the route loop can prefetch
  // the next hop's whole edge set the moment the greedy choice is known.
  // Nodes with more neighbours (rare: Delaunay degree averages six) fall
  // back to the full vn_geom vector.
  static constexpr std::size_t kInlineVnEdges = 7;
  struct alignas(64) EdgeSlot {
    std::uint32_t count = 0;   ///< full vn size (may exceed kInlineVnEdges)
    /// First long link's holder (kNoObject when none): with the default
    /// single-link configuration the route loop never has to chase the
    /// view's lr vector at all.
    ObjectId lr0 = kNoObject;
    VnEdge e[kInlineVnEdges];
  };
  std::vector<EdgeSlot> edge_slots_;

  /// Record a (re)bound long link: updates the forward entry and the lr0
  /// mirror in the origin's edge slot.
  void bind_long_link(ObjectId origin, std::uint32_t link_index,
                      ObjectId neighbor);

  void touch_vn(ObjectId o) {
    if (track_views_) touched_.vn.push_back(o);
  }
  void touch_cn(ObjectId o) {
    if (track_views_) touched_.cn.push_back(o);
  }
  void touch_lr(ObjectId o) {
    if (track_views_) touched_.lr.push_back(o);
  }

  bool track_views_ = false;
  TouchedViews touched_;
  std::vector<ObjectId> live_ids_;   // dense list for random sampling
  std::vector<std::uint32_t> live_pos_;  // id -> index into live_ids_
  spatial::GridIndex oracle_;        // brute-force dmin-ball oracle
  mutable Rng rng_;
  // Observational state: route_to() is const (probe() shares it) but the
  // accounting variant mutates the counters.
  mutable sim::Metrics metrics_;
};

}  // namespace voronet
