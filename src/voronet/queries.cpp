#include "voronet/queries.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/expect.hpp"
#include "geometry/predicates.hpp"
#include "geometry/voronoi.hpp"

namespace voronet {

namespace {

/// Squared distance from an object's region to a point, through the
/// overlay's ground-truth tessellation.
double region_dist2(const Overlay& overlay, ObjectId o, Vec2 p) {
  return geo::dist2_to_region(overlay.tessellation(), o, p);
}

/// Squared distance from an object's Voronoi region to segment [a, b].
/// The distance from p(t) = a + t(b-a) to a convex set is convex in t, so
/// ternary search converges to the global minimum.
double region_dist2_to_segment(const Overlay& overlay, ObjectId o, Vec2 a,
                               Vec2 b) {
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    const double d1 = region_dist2(overlay, o, a + m1 * (b - a));
    const double d2 = region_dist2(overlay, o, a + m2 * (b - a));
    if (d1 < d2) {
      hi = m2;
    } else {
      lo = m1;
    }
    if (d1 == 0.0 || d2 == 0.0) return 0.0;
  }
  return region_dist2(overlay, o, a + 0.5 * (lo + hi) * (b - a));
}

}  // namespace

RegionQueryResult range_query(const Overlay& overlay, ObjectId from, Vec2 a,
                              Vec2 b, double tolerance) {
  VORONET_EXPECT(tolerance >= 0.0, "negative range tolerance");
  RegionQueryResult res;

  // Reach the owner of endpoint a with the ordinary greedy protocol.
  const RouteResult entry = overlay.probe(from, a);
  res.route_hops = entry.hops;

  // Flood the "stadium" (segment inflated by the tolerance): forward
  // across exactly those Voronoi neighbours whose region comes within the
  // tolerance of the segment.  The stadium is convex, so the cells meeting
  // it form a connected patch of the Voronoi adjacency and the flood
  // reaches them all.  With tolerance 0 this degenerates to the paper's
  // sketch -- forwarding along the cells the segment crosses.
  const double tol2 = tolerance * tolerance;
  std::unordered_set<ObjectId> visited{entry.owner};
  std::vector<ObjectId> stack{entry.owner};
  while (!stack.empty()) {
    const ObjectId cur = stack.back();
    stack.pop_back();
    res.owners.push_back(cur);
    if (geo::dist2_to_segment(a, b, overlay.position(cur)) <= tol2) {
      res.matches.push_back(cur);
    }
    for (const ObjectId nb : overlay.view(cur).vn) {
      if (visited.count(nb)) continue;
      if (region_dist2_to_segment(overlay, nb, a, b) <= tol2) {
        visited.insert(nb);
        stack.push_back(nb);
        ++res.forward_messages;
      }
    }
  }
  std::sort(res.matches.begin(), res.matches.end());
  return res;
}

RegionQueryResult radius_query(const Overlay& overlay, ObjectId from,
                               Vec2 center, double radius) {
  VORONET_EXPECT(radius >= 0.0, "negative query radius");
  RegionQueryResult res;

  const RouteResult entry = overlay.probe(from, center);
  res.route_hops = entry.hops;

  // Flood the Voronoi adjacency, but only across objects whose region
  // intersects the disk: this visits exactly the cells overlapping the
  // query (the set of such cells is connected since cells are convex and
  // the disk is convex).
  const double r2 = radius * radius;
  std::unordered_set<ObjectId> visited{entry.owner};
  std::vector<ObjectId> stack{entry.owner};
  while (!stack.empty()) {
    const ObjectId cur = stack.back();
    stack.pop_back();
    res.owners.push_back(cur);
    if (dist2(overlay.position(cur), center) <= r2) {
      res.matches.push_back(cur);
    }
    for (const ObjectId nb : overlay.view(cur).vn) {
      if (visited.count(nb)) continue;
      if (region_dist2(overlay, nb, center) <= r2) {
        visited.insert(nb);
        stack.push_back(nb);
        ++res.forward_messages;
      }
    }
  }
  std::sort(res.matches.begin(), res.matches.end());
  return res;
}

}  // namespace voronet
