#include "voronet/queries.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/expect.hpp"
#include "geometry/predicates.hpp"
#include "geometry/voronoi.hpp"

namespace voronet {

namespace {

/// The shared cell-to-cell flood with the header's counting model applied
/// in one place for both query styles.
///
///  * region_test(o)  -- does o's Voronoi region meet the query region?
///    (drives the flood: exactly the cells passing it are served, plus
///    the root unconditionally -- the routed entry point always passes
///    when routing is exact, since the queried point lies in its cell);
///  * site_test(o)    -- does o's site satisfy the query predicate?
///    (fills `matches`).
///
/// Message accounting follows the cell-to-cell protocol the message-level
/// engine (src/protocol) executes: every served cell transmits the query
/// to each qualifying neighbour except its flood parent -- including
/// neighbours another branch already served, whose rejection is a result
/// message like any echo.  forward_messages is therefore
/// sum-of-qualifying-degrees minus the (V - 1) parent links, an
/// order-independent quantity.
RegionQueryResult region_flood(
    const Overlay& overlay, ObjectId from, Vec2 target,
    const std::function<bool(ObjectId)>& region_test,
    const std::function<bool(ObjectId)>& site_test) {
  RegionQueryResult res;

  // Reach the region with the ordinary greedy protocol.
  const RouteResult entry = overlay.probe(from, target);
  res.route_hops = entry.hops;

  // Memoised region test: a cell is probed once per neighbouring served
  // cell, but its geometry only needs clipping once.
  std::unordered_map<ObjectId, bool> qualifies;
  const auto test = [&](ObjectId o) {
    const auto it = qualifies.find(o);
    if (it != qualifies.end()) return it->second;
    const bool q = region_test(o);
    qualifies.emplace(o, q);
    return q;
  };

  std::size_t qualifying_transmissions = 0;
  std::unordered_set<ObjectId> visited{entry.owner};
  std::vector<ObjectId> stack{entry.owner};
  while (!stack.empty()) {
    const ObjectId cur = stack.back();
    stack.pop_back();
    res.owners.push_back(cur);
    if (site_test(cur)) res.matches.push_back(cur);
    for (const ObjectId nb : overlay.view(cur).vn) {
      if (!test(nb)) continue;
      ++qualifying_transmissions;  // cur would transmit to nb (or to its
                                   // parent, subtracted once below)
      if (visited.insert(nb).second) stack.push_back(nb);
    }
  }

  // Each served cell other than the root received the query across
  // exactly one of the qualifying adjacencies counted above (its flood
  // parent, which always qualifies -- it was served); the rest are real
  // transmissions.  Every transmission draws exactly one reply, and the
  // root sends the final aggregate to the issuer unless it is the issuer.
  VORONET_DCHECK(qualifying_transmissions + 1 >= res.owners.size());
  res.forward_messages = qualifying_transmissions - (res.owners.size() - 1);
  res.result_messages =
      res.forward_messages + (entry.owner != from ? 1 : 0);

  std::sort(res.matches.begin(), res.matches.end());
  return res;
}

}  // namespace

RegionQueryResult range_query(const Overlay& overlay, ObjectId from, Vec2 a,
                              Vec2 b, double tolerance) {
  VORONET_EXPECT(tolerance >= 0.0, "negative range tolerance");
  // Flood the "stadium" (segment inflated by the tolerance): forward
  // across exactly those Voronoi neighbours whose region comes within the
  // tolerance of the segment.  The stadium is convex, so the cells meeting
  // it form a connected patch of the Voronoi adjacency and the flood
  // reaches them all.  With tolerance 0 this degenerates to the paper's
  // sketch -- forwarding along the cells the segment crosses, decided
  // exactly by dist2_region_to_segment (a grazing segment returns 0, not
  // a small positive approximation).
  const double tol2 = tolerance * tolerance;
  return region_flood(
      overlay, from, a,
      [&](ObjectId o) {
        return geo::dist2_region_to_segment(overlay.tessellation(), o, a,
                                            b) <= tol2;
      },
      [&](ObjectId o) {
        return site_within_tolerance(a, b, overlay.position(o), tolerance);
      });
}

RegionQueryResult radius_query(const Overlay& overlay, ObjectId from,
                               Vec2 center, double radius) {
  VORONET_EXPECT(radius >= 0.0, "negative query radius");
  // Flood the Voronoi adjacency, but only across objects whose region
  // intersects the disk: this visits exactly the cells overlapping the
  // query (the set of such cells is connected since cells are convex and
  // the disk is convex).
  const double r2 = radius * radius;
  return region_flood(
      overlay, from, center,
      [&](ObjectId o) {
        return geo::dist2_to_region(overlay.tessellation(), o, center) <= r2;
      },
      [&](ObjectId o) {
        return site_within_tolerance(center, center, overlay.position(o),
                                     radius);
      });
}

QueryGeometry draw_range_geometry(Rng& rng, std::size_t population) {
  const double n = static_cast<double>(std::max<std::size_t>(population, 2));
  QueryGeometry g;
  const double len = rng.uniform(0.02, 0.3);
  const double angle = rng.uniform(0.0, 6.283185307179586);
  g.a = {rng.uniform(), rng.uniform()};
  g.b = {g.a.x + len * std::cos(angle), g.a.y + len * std::sin(angle)};
  g.tol = rng.uniform(0.0, 1.0) / std::sqrt(n);
  return g;
}

QueryGeometry draw_radius_geometry(Rng& rng, std::size_t population) {
  const double n = static_cast<double>(std::max<std::size_t>(population, 2));
  QueryGeometry g;
  const double want = rng.uniform(1.0, 48.0);  // expected matches
  g.a = {rng.uniform(), rng.uniform()};
  g.b = g.a;
  g.tol = std::sqrt(want / (3.141592653589793 * n));
  return g;
}

}  // namespace voronet
