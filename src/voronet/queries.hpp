// Rich query mechanisms over the overlay (paper, section 7 perspectives).
//
// The paper motivates VoroNet with attribute-space searches that
// hash-based DHTs cannot support.  Two are sketched in the conclusion and
// implemented here on top of the public overlay API:
//
//  * range_query: a 1-attribute range query is a segment in the unit
//    square; the query is greedy-routed to the owner of one endpoint and
//    then forwarded cell-to-cell along the segment, collecting every
//    object whose Voronoi region the segment crosses.
//
//  * radius_query: all objects within a disk; the query is routed to the
//    owner of the centre and then flooded across exactly those Voronoi
//    neighbours whose regions intersect the disk.
//
// Both use only the per-object views plus cell geometry, i.e. the same
// information a distributed deployment has, and report the number of
// forwarding messages used.
#pragma once

#include <vector>

#include "geometry/vec2.hpp"
#include "voronet/overlay.hpp"

namespace voronet {

struct RegionQueryResult {
  /// Objects owning the queried region of space, in visit order.
  std::vector<ObjectId> owners;
  /// Objects matching the query predicate (subset of owners for segment
  /// queries; objects inside the disk for radius queries).
  std::vector<ObjectId> matches;
  std::size_t route_hops = 0;      ///< greedy hops to reach the region
  std::size_t forward_messages = 0;///< cell-to-cell forwards afterwards
};

/// All objects whose Voronoi region intersects segment [a, b]; `matches`
/// lists those lying within `tolerance` of the segment (a "range" hit on
/// the queried attribute interval).
RegionQueryResult range_query(const Overlay& overlay, ObjectId from, Vec2 a,
                              Vec2 b, double tolerance);

/// All objects within distance `radius` of `center` (`matches`), found by
/// flooding the cells that intersect the disk (`owners`).
RegionQueryResult radius_query(const Overlay& overlay, ObjectId from,
                               Vec2 center, double radius);

}  // namespace voronet
