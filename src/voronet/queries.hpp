// Rich query mechanisms over the overlay (paper, section 7 perspectives).
//
// The paper motivates VoroNet with attribute-space searches that
// hash-based DHTs cannot support.  Two are sketched in the conclusion and
// implemented here on top of the public overlay API:
//
//  * range_query: a 1-attribute range query is a segment in the unit
//    square; the query is greedy-routed to the owner of one endpoint and
//    then forwarded cell-to-cell along the segment, collecting every
//    object whose Voronoi region the segment crosses.
//
//  * radius_query: all objects within a disk; the query is routed to the
//    owner of the centre and then flooded across exactly those Voronoi
//    neighbours whose regions intersect the disk.
//
// Both use only the per-object views plus cell geometry, i.e. the same
// information a distributed deployment has.  `owners` is *region*
// intersection (every cell the query region meets -- the cells that must
// serve the query), while `matches` filters by *site* distance (the
// objects whose attribute point satisfies the predicate); an object can
// own a crossed cell while sitting outside the tolerance strip, so the
// two sets legitimately differ.
//
// Counting model (shared with the message-level engine in src/protocol,
// which executes the same queries as real kQuery / kQueryForward /
// kQueryResult messages; the differential harness asserts the counts
// agree at quiescence):
//
//  * route_hops        -- greedy forwards carrying the query from `from`
//                         to the first served cell (the flood root).
//  * forward_messages  -- cell-to-cell flood transmissions: every served
//                         cell sends the query once to EACH neighbouring
//                         cell whose region passes the geometric test,
//                         except the cell it received the query from.  A
//                         receiver that was already served rejects the
//                         duplicate, but the transmission still happened
//                         and is counted (the earlier implementation
//                         counted only first-acceptance forwards and made
//                         these probes free, understating the protocol).
//  * result_messages   -- one reply per received forward (the aggregation
//                         echo, or the duplicate rejection), plus the
//                         final aggregate from the root back to the
//                         issuer when the issuer is not the root itself.
//
// The totals are order-independent: with V served cells of which Q(c)
// qualifying neighbours each, forward_messages = sum Q(c) - (V - 1),
// whatever spanning tree the flood happens to build.
//
// Epoch extension (crash failover, src/protocol): a flood that observes
// a crash-stop failure or an in-flight repair is re-issued by its issuer
// under a fresh epoch, so a query that needed E epochs pays the
// route + flood cost of every epoch it ran -- the aborted epochs'
// partial floods (each cut short by kQueryAbort branch closures) plus
// one full, clean flood.  The sequential execution below always serves
// in a single epoch (`epochs` == 1); the message layer reports its
// counters cumulatively across epochs, which is why count equality is
// asserted only for single-epoch, retransmission-free runs.
#pragma once

#include <cstddef>
#include <vector>

#include "geometry/predicates.hpp"
#include "geometry/vec2.hpp"
#include "voronet/overlay.hpp"

namespace voronet {

/// The site predicate both query styles and both execution layers share:
/// does `pos` lie within `tolerance` of segment [a, b]?  Radius queries
/// pass a == b == centre (the zero-length segment degenerates to point
/// distance), so this one definition decides `matches` for the
/// sequential flood AND the message-level issuer -- the differential
/// contract depends on the two applying the identical comparison.
[[nodiscard]] inline bool site_within_tolerance(Vec2 a, Vec2 b, Vec2 pos,
                                                double tolerance) {
  return geo::dist2_to_segment(a, b, pos) <= tolerance * tolerance;
}

struct RegionQueryResult {
  /// Objects owning the queried region of space, in visit order.
  std::vector<ObjectId> owners;
  /// Objects matching the query predicate by site distance (sorted; an
  /// owner can miss the tolerance strip and a match always owns a cell).
  std::vector<ObjectId> matches;
  std::size_t route_hops = 0;       ///< greedy hops to reach the region
  std::size_t forward_messages = 0; ///< cell-to-cell flood transmissions
  std::size_t result_messages = 0;  ///< echo / rejection / final replies
  std::size_t epochs = 1;           ///< flood epochs (sequential: always 1)

  /// Total protocol messages under the counting model above.
  [[nodiscard]] std::size_t total_messages() const {
    return route_hops + forward_messages + result_messages;
  }
};

/// All objects whose Voronoi region intersects segment [a, b] within
/// `tolerance` (`owners`); `matches` lists those whose site lies within
/// `tolerance` of the segment (a "range" hit on the queried attribute
/// interval).  Tolerance 0 degenerates to the paper's sketch: the cells
/// the segment crosses, decided exactly (see geo::dist2_region_to_segment).
RegionQueryResult range_query(const Overlay& overlay, ObjectId from, Vec2 a,
                              Vec2 b, double tolerance);

/// All objects within distance `radius` of `center` (`matches`), found by
/// flooding the cells that intersect the disk (`owners`).
RegionQueryResult radius_query(const Overlay& overlay, ObjectId from,
                               Vec2 center, double radius);

/// Scale-free random query geometry: radius and tolerance shrink with
/// sqrt(N) so a query matches tens of objects at every population (a
/// fixed radius would drown large overlays in O(N) result sets).  One
/// definition for every driver -- the bench throughput workload, the
/// scenario event scheduler and the churn shim draw the identical
/// distribution, so their per-query costs are comparable.
struct QueryGeometry {
  Vec2 a, b;         ///< segment endpoints (radius: a == b == centre)
  double tol = 0.0;  ///< range tolerance / disk radius
};
QueryGeometry draw_range_geometry(Rng& rng, std::size_t population);
QueryGeometry draw_radius_geometry(Rng& rng, std::size_t population);

}  // namespace voronet
