// Overlay snapshots: text serialisation with bit-exact coordinates.
//
// Format (line-oriented, hex-float coordinates):
//   voronet-snapshot 1
//   n_max <N> long_links <K> dmin <hexfloat> seed <S>
//   flags <use_cn> <use_lr>
//   objects <count>
//   <x> <y> <t0.x> <t0.y> ... <t(K-1).x> <t(K-1).y>     (one object per line)
//
// Only positions and long-range targets are persisted: every other view
// component (vn, cn, link bindings, back links) is a pure function of the
// geometry and is reconstructed on load.
#include <algorithm>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/expect.hpp"
#include "voronet/overlay.hpp"

namespace voronet {

namespace {

constexpr const char* kMagic = "voronet-snapshot";
constexpr int kVersion = 1;

void fail(const std::string& what) {
  throw std::runtime_error("overlay snapshot: " + what);
}

double read_double(std::istream& is, const char* what) {
  // operator>> cannot parse hex-floats (LWG 2381); go through strtod.
  std::string token;
  if (!(is >> token)) fail(std::string("bad ") + what);
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    fail(std::string("bad ") + what + " value '" + token + "'");
  }
  return v;
}

}  // namespace

void Overlay::save(std::ostream& os) const {
  // With long links disabled no targets are stored per object, so the
  // persisted link count must be 0 for the loader's per-line arity.
  const std::size_t stored_links =
      config_.use_long_links ? config_.long_links : 0;
  os << kMagic << ' ' << kVersion << '\n';
  os << "n_max " << config_.n_max << " long_links " << stored_links
     << " dmin " << std::hexfloat << dmin_ << std::defaultfloat << " seed "
     << config_.seed << '\n';
  os << "flags " << (config_.use_close_neighbors ? 1 : 0) << ' '
     << (config_.use_long_links ? 1 : 0) << '\n';
  os << "objects " << live_ids_.size() << '\n';
  os << std::hexfloat;
  for (const ObjectId o : live_ids_) {
    const NodeView& v = nodes_[o].view;
    os << v.position.x << ' ' << v.position.y;
    for (const LongLink& l : v.lr) {
      os << ' ' << l.target.x << ' ' << l.target.y;
    }
    os << '\n';
  }
  os << std::defaultfloat;
  VORONET_EXPECT(static_cast<bool>(os), "snapshot write failed");
}

std::unique_ptr<Overlay> Overlay::load(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic) fail("bad header");
  if (version != kVersion) fail("unsupported version");

  OverlayConfig cfg;
  std::string key;
  if (!(is >> key) || key != "n_max") fail("missing n_max");
  if (!(is >> cfg.n_max)) fail("bad n_max");
  if (!(is >> key) || key != "long_links") fail("missing long_links");
  if (!(is >> cfg.long_links)) fail("bad long_links");
  if (!(is >> key) || key != "dmin") fail("missing dmin");
  cfg.dmin_override = read_double(is, "dmin");
  if (!(is >> key) || key != "seed") fail("missing seed");
  if (!(is >> cfg.seed)) fail("bad seed");
  if (!(is >> key) || key != "flags") fail("missing flags");
  int use_cn = 1;
  int use_lr = 1;
  if (!(is >> use_cn >> use_lr)) fail("bad flags");
  cfg.use_close_neighbors = use_cn != 0;
  cfg.use_long_links = use_lr != 0;
  if (!(is >> key) || key != "objects") fail("missing objects");
  std::size_t count = 0;
  if (!(is >> count)) fail("bad object count");

  auto overlay = std::unique_ptr<Overlay>(new Overlay(cfg));

  // Pass 1: geometry.  Insert straight into the tessellation (no protocol
  // replay needed -- the snapshot already is the converged structure).
  struct Pending {
    ObjectId id;
    std::vector<Vec2> targets;
  };
  std::vector<Pending> pending;
  pending.reserve(count);
  geo::DelaunayTriangulation::VertexId hint =
      geo::DelaunayTriangulation::kNoVertex;
  for (std::size_t i = 0; i < count; ++i) {
    const double x = read_double(is, "x");
    const double y = read_double(is, "y");
    const auto out = overlay->dt_.insert({x, y}, hint);
    if (!out.created) fail("duplicate object position");
    hint = out.vertex;
    const ObjectId id = out.vertex;
    overlay->activate_object(id, {x, y});

    Pending p;
    p.id = id;
    p.targets.reserve(cfg.long_links);
    for (std::size_t j = 0; j < cfg.long_links; ++j) {
      const double tx = read_double(is, "target x");
      const double ty = read_double(is, "target y");
      p.targets.push_back({tx, ty});
    }
    pending.push_back(std::move(p));
  }

  // Pass 2: views.  vn from the tessellation; cn from the dmin balls; the
  // long links re-bind to the current region owners; blr is the inverse.
  const double dmin2 = overlay->dmin_ * overlay->dmin_;
  std::vector<spatial::GridIndex::Id> ball;
  for (const Pending& p : pending) {
    NodeView& v = overlay->nodes_[p.id].view;
    v.vn = overlay->dt_.neighbors(p.id);
    std::sort(v.vn.begin(), v.vn.end());
    overlay->rebuild_vn_geom(p.id);
    ball.clear();
    overlay->oracle_.range(v.position, overlay->dmin_, ball);
    for (const auto raw : ball) {
      const auto other = static_cast<ObjectId>(raw);
      if (other == p.id) continue;
      if (dist2(overlay->nodes_[other].view.position, v.position) <= dmin2) {
        v.cn.push_back(other);
      }
    }
    std::sort(v.cn.begin(), v.cn.end());
  }
  for (const Pending& p : pending) {
    NodeView& v = overlay->nodes_[p.id].view;
    for (std::uint32_t j = 0; j < p.targets.size(); ++j) {
      const Vec2 target = p.targets[j];
      const ObjectId owner = overlay->dt_.nearest(target, p.id);
      v.lr.push_back({target, owner});
      if (j == 0) overlay->edge_slots_[p.id].lr0 = owner;
      overlay->nodes_[owner].view.blr.push_back({p.id, j, target});
    }
  }
  return overlay;
}

}  // namespace voronet
