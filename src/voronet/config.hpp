// Overlay configuration (paper, sections 3 and 4).
#pragma once

#include <cstdint>
#include <cstddef>

namespace voronet {

/// How dmin -- the close-neighbourhood radius -- derives from Nmax.
///
/// The paper's prose defines dmin = 1/(pi * Nmax) (section 4.1) yet argues
/// the expected close-neighbour count via pi * dmin^2 * Nmax = 1, which
/// actually requires dmin = 1/sqrt(pi * Nmax).  Both give poly-log routing;
/// they differ in how aggressively the close-neighbour sets kick in for
/// clustered data.  We default to the paper's literal formula and expose
/// the ball-expectation variant for the ablation bench (see DESIGN.md and
/// EXPERIMENTS.md).
enum class DminRule : std::uint8_t {
  kPaperText,        ///< dmin = 1 / (pi * Nmax)
  kBallExpectation,  ///< dmin = 1 / sqrt(pi * Nmax)
};

/// Compute dmin for a given rule and capacity.
double dmin_for(DminRule rule, std::size_t n_max);

struct OverlayConfig {
  /// Maximum number of objects the overlay is provisioned for; routing is
  /// O(log^2 Nmax) and dmin derives from it (paper, section 3).
  std::size_t n_max = 300'000;

  /// Long-range links per object (k); the paper evaluates 1..10 (Fig. 8).
  std::size_t long_links = 1;

  /// Seed for every stochastic choice made by the overlay (long-range
  /// targets, gateway selection).
  std::uint64_t seed = 1;

  DminRule dmin_rule = DminRule::kPaperText;

  /// If positive, overrides the dmin computed from dmin_rule / n_max.
  double dmin_override = 0.0;

  /// Ablation switches: disable pieces of the view to measure their
  /// contribution (used by bench_ablation_views; both default on).
  bool use_close_neighbors = true;
  bool use_long_links = true;

  [[nodiscard]] double dmin() const {
    return dmin_override > 0.0 ? dmin_override : dmin_for(dmin_rule, n_max);
  }
};

}  // namespace voronet
