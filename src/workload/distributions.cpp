#include "workload/distributions.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/expect.hpp"

namespace voronet::workload {

std::string DistributionConfig::name() const {
  switch (kind) {
    case Kind::kUniform:
      return "uniform";
    case Kind::kPowerLaw: {
      // Match the paper's labels: "sparse (alpha = k)".
      const int a = static_cast<int>(alpha);
      if (static_cast<double>(a) == alpha) {
        return "sparse(alpha=" + std::to_string(a) + ")";
      }
      return "sparse(alpha=" + std::to_string(alpha) + ")";
    }
    case Kind::kClusters:
      return "clusters(" + std::to_string(clusters) + ")";
  }
  return "unknown";
}

DistributionConfig DistributionConfig::uniform() { return {}; }

DistributionConfig DistributionConfig::power_law(double alpha) {
  DistributionConfig c;
  c.kind = Kind::kPowerLaw;
  c.alpha = alpha;
  return c;
}

DistributionConfig DistributionConfig::cluster_mix(std::size_t n,
                                                   double sigma) {
  DistributionConfig c;
  c.kind = Kind::kClusters;
  c.clusters = n;
  c.cluster_sigma = sigma;
  return c;
}

PointGenerator::PointGenerator(const DistributionConfig& config)
    : config_(config) {
  Rng layout_rng(config.seed);
  if (config_.kind == Kind::kPowerLaw) {
    VORONET_EXPECT(config_.alpha > 0.0, "power-law alpha must be positive");
    VORONET_EXPECT(config_.values_per_axis >= 2,
                   "power-law needs at least two attribute values");
    const std::size_t v = config_.values_per_axis;
    std::vector<double> weights(v);
    for (std::size_t i = 0; i < v; ++i) {
      weights[i] = std::pow(static_cast<double>(i + 1), -config_.alpha);
    }
    for (int axis = 0; axis < 2; ++axis) {
      // Random rank-to-position assignment: popular values land anywhere.
      std::vector<double> positions(v);
      for (std::size_t i = 0; i < v; ++i) {
        positions[i] =
            (static_cast<double>(i) + 0.5) / static_cast<double>(v);
      }
      for (std::size_t i = v - 1; i > 0; --i) {
        std::swap(positions[i], positions[layout_rng.index(i + 1)]);
      }
      axis_samplers_.emplace_back(weights);
      axis_positions_.push_back(std::move(positions));
    }
  } else if (config_.kind == Kind::kClusters) {
    VORONET_EXPECT(config_.clusters > 0, "cluster count must be positive");
    cluster_centers_.reserve(config_.clusters);
    for (std::size_t i = 0; i < config_.clusters; ++i) {
      cluster_centers_.push_back(
          {layout_rng.uniform(), layout_rng.uniform()});
    }
  }
}

double PointGenerator::axis_value(Rng& rng, const AliasSampler& sampler,
                                  const std::vector<double>& positions) {
  const std::size_t rank = sampler.sample(rng);
  // positions[] holds bin centres; spread within the bin by `jitter`
  // (fraction of the bin width, 1.0 = the whole bin).
  const double bin_width = 1.0 / static_cast<double>(config_.values_per_axis);
  const double x = positions[rank] +
                   bin_width * config_.jitter * (rng.uniform() - 0.5);
  return std::clamp(x, 0.0, 1.0);
}

Vec2 PointGenerator::next(Rng& rng) {
  switch (config_.kind) {
    case Kind::kUniform:
      return {rng.uniform(), rng.uniform()};
    case Kind::kPowerLaw:
      return {axis_value(rng, axis_samplers_[0], axis_positions_[0]),
              axis_value(rng, axis_samplers_[1], axis_positions_[1])};
    case Kind::kClusters: {
      const Vec2 c = cluster_centers_[rng.index(cluster_centers_.size())];
      // Box-Muller normal jitter around the cluster centre.
      const double u1 = rng.uniform(1e-12, 1.0);
      const double u2 = rng.uniform();
      const double r = config_.cluster_sigma * std::sqrt(-2.0 * std::log(u1));
      const double theta = 2.0 * 3.14159265358979323846 * u2;
      return {std::clamp(c.x + r * std::cos(theta), 0.0, 1.0),
              std::clamp(c.y + r * std::sin(theta), 0.0, 1.0)};
    }
  }
  VORONET_EXPECT(false, "unreachable distribution kind");
  return {};
}

std::vector<Vec2> PointGenerator::generate(std::size_t n, Rng& rng) {
  struct VecHash {
    std::size_t operator()(const Vec2& p) const {
      std::size_t hx = std::hash<double>{}(p.x);
      std::size_t hy = std::hash<double>{}(p.y);
      return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
    }
  };
  std::unordered_set<Vec2, VecHash> seen;
  seen.reserve(n * 2);
  std::vector<Vec2> out;
  out.reserve(n);
  std::size_t attempts = 0;
  while (out.size() < n) {
    VORONET_EXPECT(++attempts <= 100 * n + 1000,
                   "could not generate enough distinct positions");
    const Vec2 p = next(rng);
    if (seen.insert(p).second) out.push_back(p);
  }
  return out;
}

std::vector<DistributionConfig> paper_distributions() {
  return {DistributionConfig::uniform(), DistributionConfig::power_law(1.0),
          DistributionConfig::power_law(2.0),
          DistributionConfig::power_law(5.0)};
}

}  // namespace voronet::workload
