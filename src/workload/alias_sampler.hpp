// Walker alias method: O(1) sampling from an arbitrary discrete
// distribution after O(n) preprocessing.  Used to draw power-law
// ("sparse") attribute values for the paper's skewed workloads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace voronet::workload {

class AliasSampler {
 public:
  /// Build from (unnormalised) non-negative weights; at least one must be
  /// positive.
  explicit AliasSampler(std::span<const double> weights);

  /// Draw an index with probability proportional to its weight.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

  /// Exact probability of index i under the built distribution.
  [[nodiscard]] double probability(std::size_t i) const {
    return normalized_[i];
  }

 private:
  std::vector<double> prob_;         // acceptance threshold per bucket
  std::vector<std::size_t> alias_;   // fallback index per bucket
  std::vector<double> normalized_;   // normalised input weights
};

}  // namespace voronet::workload
