#include "workload/alias_sampler.hpp"

#include "common/expect.hpp"

namespace voronet::workload {

AliasSampler::AliasSampler(std::span<const double> weights) {
  VORONET_EXPECT(!weights.empty(), "AliasSampler needs weights");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (const double w : weights) {
    VORONET_EXPECT(w >= 0.0, "AliasSampler weights must be non-negative");
    total += w;
  }
  VORONET_EXPECT(total > 0.0, "AliasSampler needs a positive total weight");

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities; buckets with p < 1 borrow from buckets with p > 1.
  std::vector<double> scaled(n);
  std::vector<std::size_t> small;
  std::vector<std::size_t> large;
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }
  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    small.pop_back();
    const std::size_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are (numerically) exactly 1.
  for (const std::size_t i : small) prob_[i] = 1.0;
  for (const std::size_t i : large) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t bucket = rng.index(prob_.size());
  return rng.uniform() < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace voronet::workload
