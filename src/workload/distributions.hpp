// Object-attribute workloads from the paper's evaluation (section 5).
//
// The paper populates the unit square with 300,000 objects under
//   (i)  a uniform distribution, and
//   (ii) "sparse" power-law distributions where the frequency of the i-th
//        most popular attribute value is proportional to 1/i^alpha, for
//        alpha in {1, 2, 5}.
//
// A power-law axis is modelled as a finite set of discrete attribute
// values (values_per_axis evenly spaced bins); which bin gets which
// popularity rank is a seeded random permutation so popular values are not
// spatially adjacent.  Objects sharing a value are spread uniformly inside
// the value's bin (jitter = 1.0 spans the full bin width): a Voronoi
// tessellation of coincident sites is undefined, and the paper's own
// evaluation must spread them likewise -- its Figure 6 shows alpha = 5
// routing costs overlapping the uniform ones, which is only possible when
// the popular-value clusters are wider than dmin (otherwise almost every
// route terminates through the dmin stop condition after ~0 hops).  The
// resulting workload is exactly the paper's regime: popular values form
// dense clusters thousands of times denser than uniform, and the
// close-neighbour sets absorb the density spikes.  Set jitter << 1 to
// study tighter clusters (the ablation bench does).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "geometry/vec2.hpp"
#include "workload/alias_sampler.hpp"

namespace voronet::workload {

enum class Kind {
  kUniform,
  kPowerLaw,  ///< per-axis Zipf over discrete values ("sparse" in the paper)
  kClusters,  ///< Gaussian cluster mixture (stress workload, not in paper)
};

struct DistributionConfig {
  Kind kind = Kind::kUniform;
  double alpha = 1.0;                ///< power-law exponent (kPowerLaw)
  std::size_t values_per_axis = 1024;///< discrete values per axis (kPowerLaw)
  double jitter = 1.0;               ///< in-bin spread, fraction of bin width
  std::size_t clusters = 16;         ///< cluster count (kClusters)
  double cluster_sigma = 0.01;       ///< cluster std-dev (kClusters)
  std::uint64_t seed = 42;           ///< layout seed (rank permutation etc.)

  [[nodiscard]] std::string name() const;

  static DistributionConfig uniform();
  static DistributionConfig power_law(double alpha);
  static DistributionConfig cluster_mix(std::size_t n, double sigma);
};

/// Draws points in the unit square according to a DistributionConfig.
class PointGenerator {
 public:
  explicit PointGenerator(const DistributionConfig& config);

  /// Next point (always inside [0,1] x [0,1]).
  [[nodiscard]] Vec2 next(Rng& rng);

  /// Generate n points, guaranteeing pairwise-distinct positions (the
  /// overlay and the tessellation require distinct sites).
  [[nodiscard]] std::vector<Vec2> generate(std::size_t n, Rng& rng);

  [[nodiscard]] const DistributionConfig& config() const { return config_; }

 private:
  [[nodiscard]] double axis_value(Rng& rng, const AliasSampler& sampler,
                                  const std::vector<double>& positions);

  DistributionConfig config_;
  // kPowerLaw state (one independent layout per axis).
  std::vector<AliasSampler> axis_samplers_;
  std::vector<std::vector<double>> axis_positions_;
  // kClusters state.
  std::vector<Vec2> cluster_centers_;
};

/// The four workloads of the paper's evaluation, in presentation order.
std::vector<DistributionConfig> paper_distributions();

}  // namespace voronet::workload
