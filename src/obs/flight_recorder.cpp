#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace voronet::obs {

const char* flight_event_name(FlightEvent e) {
  switch (e) {
    case FlightEvent::kSend:
      return "send";
    case FlightEvent::kDeliver:
      return "deliver";
    case FlightEvent::kDrop:
      return "drop";
    case FlightEvent::kDuplicate:
      return "duplicate";
    case FlightEvent::kParked:
      return "parked";
    case FlightEvent::kRetransmit:
      return "retransmit";
    case FlightEvent::kAbandon:
      return "abandon";
    case FlightEvent::kCrash:
      return "crash";
    case FlightEvent::kStall:
      return "stall";
    case FlightEvent::kResume:
      return "resume";
    case FlightEvent::kServe:
      return "serve";
    case FlightEvent::kBranchAbort:
      return "branch_abort";
    case FlightEvent::kReissue:
      return "reissue";
    case FlightEvent::kComplete:
      return "complete";
  }
  return "unknown";
}

void FlightRecorder::enable(std::size_t per_node_capacity) {
  capacity_ = per_node_capacity;
  seq_ = 0;
  rings_.clear();
}

void FlightRecorder::record(std::int64_t node, double at, FlightEvent event,
                            sim::MessageKind kind, std::int64_t peer,
                            std::uint64_t ref, std::uint32_t epoch) {
  if (capacity_ == 0) return;
  const auto idx = static_cast<std::size_t>(node + kIndexBias);
  if (idx >= rings_.size()) rings_.resize(idx + 1);
  Ring& ring = rings_[idx];
  Entry e;
  e.at = at;
  e.event = event;
  e.kind = kind;
  e.peer = peer;
  e.ref = ref;
  e.epoch = epoch;
  e.seq = ++seq_;
  ++ring.total;
  if (ring.slots.size() < capacity_) {
    ring.slots.push_back(e);
    return;
  }
  ring.slots[ring.next] = e;
  ring.next = (ring.next + 1) % capacity_;
}

void FlightRecorder::reset_node(std::int64_t node) {
  const auto idx = static_cast<std::size_t>(node + kIndexBias);
  if (idx >= rings_.size()) return;
  rings_[idx] = Ring{};
}

Json FlightRecorder::to_json() const {
  Json rows = Json::array();
  // Dense rings are already in ascending node order; untouched (or
  // reset) rings have total == 0 and are not reported.
  for (std::size_t idx = 0; idx < rings_.size(); ++idx) {
    const Ring& ring = rings_[idx];
    if (ring.total == 0) continue;
    const std::int64_t node = static_cast<std::int64_t>(idx) - kIndexBias;
    Json events = Json::array();
    // Oldest -> newest: the ring's overwrite cursor is where the oldest
    // surviving entry sits once the ring has wrapped.
    const std::size_t n = ring.slots.size();
    const std::size_t start = n < capacity_ ? 0 : ring.next;
    for (std::size_t i = 0; i < n; ++i) {
      const Entry& e = ring.slots[(start + i) % n];
      Json ev = Json::object();
      ev.set("at", Json::number(e.at));
      ev.set("seq", Json::integer(e.seq));
      ev.set("event", Json::string(flight_event_name(e.event)));
      if (e.kind != sim::MessageKind::kCount) {
        ev.set("kind",
               Json::string(std::string(sim::message_kind_name(e.kind))));
      }
      if (e.peer >= 0) {
        ev.set("peer",
               Json::integer(static_cast<unsigned long long>(e.peer)));
      }
      if (e.ref != 0) ev.set("ref", Json::integer(e.ref));
      if (e.epoch != 0) ev.set("epoch", Json::integer(e.epoch));
      events.push(std::move(ev));
    }
    rows.push(Json::object()
                  .set("node", Json::integer(
                                   static_cast<unsigned long long>(node)))
                  .set("dropped", Json::integer(ring.total - n))
                  .set("events", std::move(events)));
  }
  Json doc = Json::object();
  doc.set("per_node_capacity", Json::integer(capacity_));
  doc.set("nodes", std::move(rows));
  return doc;
}

}  // namespace voronet::obs
