#include "obs/sampler.hpp"

namespace voronet::obs {

void MetricsSampler::take(double end, const CounterSnapshot& counters,
                          const Gauges& gauges) {
  if (!active() || !(end > last_end_)) return;
  Window w;
  w.start = last_end_;
  w.end = end;
  for (std::size_t k = 0; k < sim::kMessageKindCount; ++k) {
    w.messages[k] = counters.messages[k] - last_.messages[k];
  }
  w.duplicates = counters.duplicates - last_.duplicates;
  w.retransmits = counters.retransmits - last_.retransmits;
  w.dropped = counters.dropped - last_.dropped;
  w.gauges = gauges;
  windows_.push_back(w);
  last_end_ = end;
  last_ = counters;
  if (windows_.size() >= max_windows_) truncated_ = true;
}

}  // namespace voronet::obs
