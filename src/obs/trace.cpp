#include "obs/trace.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace voronet::obs {

SpanId Tracer::begin_span(double at, std::string_view name, std::int64_t node,
                          SpanId parent) {
  if (!enabled_) return kNoSpan;
  Record r;
  r.id = records_.size() + 1;
  r.parent = parent;
  r.is_span = true;
  r.name = std::string(name);
  r.node = node;
  r.begin = at;
  records_.push_back(std::move(r));
  return records_.back().id;
}

void Tracer::end_span(SpanId id, double at) {
  if (!enabled_ || id == kNoSpan || id > records_.size()) return;
  records_[id - 1].end = at;
}

SpanId Tracer::instant(double at, std::string_view name, std::int64_t node,
                       SpanId parent) {
  if (!enabled_) return kNoSpan;
  Record r;
  r.id = records_.size() + 1;
  r.parent = parent;
  r.is_span = false;
  r.name = std::string(name);
  r.node = node;
  r.begin = at;
  r.end = at;
  records_.push_back(std::move(r));
  return records_.back().id;
}

void Tracer::arg(SpanId id, std::string_view key, std::uint64_t value) {
  if (!enabled_ || id == kNoSpan || id > records_.size()) return;
  records_[id - 1].args.push_back(
      {std::string(key), std::to_string(value), /*numeric=*/true});
}

void Tracer::arg(SpanId id, std::string_view key, std::string_view value) {
  if (!enabled_ || id == kNoSpan || id > records_.size()) return;
  records_[id - 1].args.push_back(
      {std::string(key), std::string(value), /*numeric=*/false});
}

Json Tracer::to_chrome_json() const {
  // Times export in microseconds (trace_event's unit); sim time is
  // seconds.  Everything below is a pure function of the records, so the
  // bytes are identical across replays of the same (scenario, seed).
  constexpr double kUs = 1e6;
  Json events = Json::array();
  for (const Record& r : records_) {
    Json ev = Json::object();
    ev.set("name", Json::string(r.name));
    ev.set("ph", Json::string(r.is_span ? "X" : "i"));
    ev.set("ts", Json::number(r.begin * kUs));
    if (r.is_span) {
      // A span that was never closed (query still in flight at export)
      // clamps to zero duration and says so, rather than exporting a
      // negative dur no viewer accepts.
      const bool unfinished = r.end < r.begin;
      ev.set("dur",
             Json::number(unfinished ? 0.0 : (r.end - r.begin) * kUs));
      if (unfinished) ev.set("unfinished", Json::boolean(true));
    } else {
      ev.set("s", Json::string("t"));  // thread-scoped instant
    }
    ev.set("pid", Json::integer(1));
    ev.set("tid", Json::integer(static_cast<unsigned long long>(
                      r.node < 0 ? 0 : r.node)));
    Json args = Json::object();
    args.set("span", Json::integer(r.id));
    if (r.parent != kNoSpan) args.set("parent", Json::integer(r.parent));
    for (const Arg& a : r.args) {
      args.set(a.key, a.numeric
                          ? Json::integer(std::stoull(a.value))
                          : Json::string(a.value));
    }
    ev.set("args", std::move(args));
    events.push(std::move(ev));
  }
  Json doc = Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", Json::string("ms"));
  return doc;
}

}  // namespace voronet::obs
