// Flight recorder: bounded per-node ring buffers of recent protocol
// events.
//
// The fuzzer's oracle enables it for every judged run: when a finding
// fires, the dump shows what each node saw in its last moments -- sends,
// deliveries, drops, parked arrivals, retransmissions, abandons, crash /
// stall transitions, query serves and re-issues -- without paying for a
// full trace on the millions of clean runs.  Memory is strictly bounded:
// capacity entries per node, oldest overwritten first, each entry a few
// words.  A monotone global sequence number orders entries ACROSS nodes,
// so a dump reconstructs the interleaving, not just per-node order.
//
// Disabled by default (capacity 0): every record() call is guarded by
// enabled(), costing one branch per instrumentation site.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/metrics.hpp"

namespace voronet {
class Json;
}

namespace voronet::obs {

enum class FlightEvent : std::uint8_t {
  kSend,        ///< logical reliable send (acks are not recorded)
  kDeliver,     ///< message handed to the node's sink
  kDrop,        ///< lost on the wire / at a crashed destination
  kDuplicate,   ///< arrival suppressed by transport dedup
  kParked,      ///< arrival parked at a stalled node
  kRetransmit,  ///< timeout fired, attempt re-sent
  kAbandon,     ///< reliable transfer given up
  kCrash,       ///< crash-stop failure of the node
  kStall,       ///< gray-failure stall window opened
  kResume,      ///< stall window closed, backlog drained
  kServe,       ///< node served a query flood (joined the flood tree)
  kBranchAbort, ///< a flood branch below the node failed over
  kReissue,     ///< query epoch superseded, fresh epoch issued
  kComplete,    ///< query completed at the issuer / root
};

[[nodiscard]] const char* flight_event_name(FlightEvent e);

class FlightRecorder {
 public:
  struct Entry {
    double at = 0.0;
    FlightEvent event = FlightEvent::kSend;
    /// Message kind, or sim::MessageKind::kCount for non-message events.
    sim::MessageKind kind = sim::MessageKind::kCount;
    std::int64_t peer = -1;   ///< other endpoint, -1 = none
    std::uint64_t ref = 0;    ///< query / join / version id, 0 = none
    std::uint32_t epoch = 0;  ///< query epoch, 0 = n/a
    std::uint64_t seq = 0;    ///< global order across nodes
  };

  /// Turn the recorder on with a per-node ring of `per_node_capacity`
  /// entries (0 disables and drops any state).
  void enable(std::size_t per_node_capacity = 64);
  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  void record(std::int64_t node, double at, FlightEvent event,
              sim::MessageKind kind, std::int64_t peer,
              std::uint64_t ref = 0, std::uint32_t epoch = 0);

  /// Drop one node's ring (a recycled node id is a brand-new endpoint:
  /// its dump must not open with the predecessor's last moments).
  void reset_node(std::int64_t node);

  /// {"per_node_capacity": C, "nodes": [{"node": id, "dropped": n,
  /// "events": [...]}]} -- nodes ascending, events oldest -> newest.
  /// Deterministic for a deterministic run.
  [[nodiscard]] Json to_json() const;

 private:
  struct Ring {
    std::vector<Entry> slots;  ///< capacity_ once full
    std::size_t next = 0;      ///< overwrite cursor (slots full)
    std::uint64_t total = 0;   ///< entries ever recorded
  };

  /// Node ids are dense non-negative ints (the overlay's vertex ids), so
  /// the rings live in a vector indexed by node + kIndexBias -- the bias
  /// absorbs the sentinel ids (-1 for "no node", kNoVertex = -2) the
  /// instrumentation occasionally records against.
  static constexpr std::int64_t kIndexBias = 2;

  std::size_t capacity_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<Ring> rings_;  ///< index = node + kIndexBias; empty = no ring
};

}  // namespace voronet::obs
