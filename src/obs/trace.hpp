// Deterministic causal tracing for the protocol engine.
//
// A Tracer collects spans (begin/end intervals) and instants (point
// events) stamped with simulated time, the node they happened on and the
// span they are causally nested under.  The harness threads span ids
// through protocol::Message, so a query's whole lifetime -- greedy route
// hops, flood forwards, echoes, aborts, epoch re-issues -- and every
// reliable transfer's attempt timeline hang off one causal tree.
//
// Zero cost when off: every record_* call is guarded by enabled(), and
// the instrumentation sites in protocol::Network / ProtocolHarness guard
// themselves too, so a disabled tracer costs one predictable branch per
// site (asserted by bench_protocol staying flat).
//
// Determinism: span ids are assigned in event-execution order, times are
// simulated times, and export uses the repo's ordered Json writer -- the
// same (scenario, seed) emits byte-identical trace JSON on every replay
// (asserted by tests/obs_test.cpp).
//
// Export is Chrome trace_event JSON ("X" complete events for spans, "i"
// instants), loadable in Perfetto / chrome://tracing: one thread track
// per node, microsecond timestamps (sim seconds x 1e6).  The causal
// parent travels in args.parent (trace_event has no native parent field
// for complete events); tools/trace_inspect rebuilds the tree from it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace voronet {
class Json;
}

namespace voronet::obs {

/// Identifier of one span (or instant) in a Tracer; 0 = none.  Carried in
/// protocol::Message so receivers can parent their events causally.
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

class Tracer {
 public:
  struct Arg {
    std::string key;
    std::string value;  ///< pre-rendered
    bool numeric = false;
  };

  struct Record {
    SpanId id = kNoSpan;
    SpanId parent = kNoSpan;
    bool is_span = false;  ///< span (interval) vs instant (point)
    std::string name;
    std::int64_t node = -1;  ///< thread track (protocol node id)
    double begin = 0.0;
    /// Span end; a span never end_span()ed keeps end < begin and exports
    /// with zero duration plus an "unfinished" arg.
    double end = -1.0;
    std::vector<Arg> args;
  };

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Open a span at simulated time `at` on `node`, nested under `parent`.
  /// Returns kNoSpan (and records nothing) while disabled.
  SpanId begin_span(double at, std::string_view name, std::int64_t node,
                    SpanId parent = kNoSpan);
  /// Close a span; ignores kNoSpan (so call sites need no guards beyond
  /// holding the id).
  void end_span(SpanId id, double at);
  /// Record a point event; returns its id so instants can parent others.
  SpanId instant(double at, std::string_view name, std::int64_t node,
                 SpanId parent = kNoSpan);

  /// Attach an argument to an existing record (no-op for kNoSpan).
  void arg(SpanId id, std::string_view key, std::uint64_t value);
  void arg(SpanId id, std::string_view key, std::string_view value);

  [[nodiscard]] const std::vector<Record>& records() const {
    return records_;
  }
  void clear() { records_.clear(); }

  /// {"traceEvents": [...]} -- Chrome/Perfetto trace_event JSON.
  [[nodiscard]] Json to_chrome_json() const;

 private:
  bool enabled_ = false;
  std::vector<Record> records_;  ///< id == index + 1
};

}  // namespace voronet::obs
