// Windowed time-series sampling of the protocol engine's counters.
//
// scenario::Runner drives the sampler: at every sim-time boundary (t0 +
// k * interval) it snapshots the network's per-kind message counters and
// wire stats, and the sampler turns consecutive snapshots into windows of
// deltas plus end-of-window gauges (in-flight transfers, stalled backlog
// depth, pending queries, view-convergence residual).  This is the
// msgs/query ablation hook: the seed-hop / forward / duplicate / echo
// decomposition per window shows WHICH term of the query cost grows when
// a knob moves, where the end-of-run aggregate only shows that the total
// did.
//
// The sampler is passive -- it schedules nothing and owns no references
// into the harness -- so enabling it cannot perturb the event order, and
// the per-kind window deltas sum exactly to the run's end-of-run message
// deltas (asserted by tests/obs_test.cpp).  Window count is capped; a
// run that would exceed the cap keeps executing but stops sampling and
// reports the truncation, rather than silently growing without bound.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/metrics.hpp"

namespace voronet::obs {

/// Counter snapshot the driver takes at each boundary (monotone values,
/// not deltas; the sampler differences consecutive snapshots).
struct CounterSnapshot {
  std::array<std::uint64_t, sim::kMessageKindCount> messages{};
  std::uint64_t duplicates = 0;   ///< dedup-suppressed arrivals
  std::uint64_t retransmits = 0;
  std::uint64_t dropped = 0;
};

/// End-of-window gauges (instantaneous, not differenced).
struct Gauges {
  std::size_t in_flight = 0;        ///< unacked reliable transfers
  std::size_t stalled_backlog = 0;  ///< messages parked at stalled nodes
  std::size_t pending_queries = 0;
  std::size_t stale_views = 0;  ///< verify_views stale + missing residual
  std::size_t population = 0;
};

struct Window {
  double start = 0.0;
  double end = 0.0;
  std::array<std::uint64_t, sim::kMessageKindCount> messages{};
  std::uint64_t duplicates = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t dropped = 0;
  Gauges gauges;

  [[nodiscard]] std::uint64_t messages_of(sim::MessageKind kind) const {
    return messages[static_cast<std::size_t>(kind)];
  }
};

class MetricsSampler {
 public:
  /// interval <= 0 leaves the sampler inert (active() false forever).
  explicit MetricsSampler(double interval, std::size_t max_windows = 4096)
      : interval_(interval), max_windows_(max_windows) {}

  /// Start sampling: windows begin at t0 (the timeline origin).
  void begin(double t0, const CounterSnapshot& counters) {
    if (interval_ <= 0.0) return;
    started_ = true;
    last_end_ = t0;
    last_ = counters;
  }

  /// Still taking windows?  False before begin(), with interval 0, or
  /// once the window cap truncated the series.
  [[nodiscard]] bool active() const {
    return started_ && !truncated_;
  }

  /// Next boundary the driver should run_until before sampling.
  [[nodiscard]] double next_boundary() const { return last_end_ + interval_; }

  /// Close the window [previous end, end].  Zero-length or backwards
  /// windows are ignored (a drain that went idle exactly on a boundary).
  void take(double end, const CounterSnapshot& counters,
            const Gauges& gauges);

  [[nodiscard]] const std::vector<Window>& windows() const {
    return windows_;
  }
  [[nodiscard]] bool truncated() const { return truncated_; }
  [[nodiscard]] double interval() const { return interval_; }

 private:
  double interval_ = 0.0;
  std::size_t max_windows_ = 4096;
  bool started_ = false;
  bool truncated_ = false;
  double last_end_ = 0.0;
  CounterSnapshot last_;
  std::vector<Window> windows_;
};

}  // namespace voronet::obs
