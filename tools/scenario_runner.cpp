// scenario_runner -- execute a recorded scenario file and emit its report.
//
//   $ ./scenario_runner scenarios/partition_heal.json
//   $ ./scenario_runner scenarios/steady_churn.json --json report.json
//   $ ./scenario_runner scenarios/flash_crowd_join.json --seed 99 --quiet
//   $ ./scenario_runner scenarios/steady_churn.json --trace trace.json
//
// The positional argument is a scenario JSON document (see DESIGN.md,
// "Scenario API"); the report JSON goes to stdout (or --json PATH).
// Replays are deterministic: the same file with the same seed produces a
// bit-identical report -- and a bit-identical trace.  Exit status is 0
// only when the run quiesced and the final differential audit converged,
// so CI can smoke-replay every committed scenario with a shell loop.
//
// Flags:
//   --json PATH    write the report to PATH instead of stdout
//   --seed S       override the scenario's seed
//   --population N override the scenario's initial population
//   --trace PATH   write a Chrome/Perfetto trace_event JSON of the run
//                  (open in https://ui.perfetto.dev or chrome://tracing;
//                  inspect with tools/trace_inspect)
//   --flight PATH  write the flight-recorder dump (per-node ring buffers)
//   --sample DT    override Scenario::sample_interval (windowed report
//                  time series; DT in simulated seconds)
//   --check        judge the run with the fuzzer's oracle clauses and
//                  name the violated clause (quiesced / converged /
//                  completion / probe mismatch) with its counts
//   --quiet        suppress the report (status comes from the exit code)
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "scenario/fuzz.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const std::string json_path = flags.get_string("json", "");
  const std::string trace_path = flags.get_string("trace", "");
  const std::string flight_path = flags.get_string("flight", "");
  const double sample_override = flags.get_double("sample", 0.0);
  const bool quiet = flags.get_bool("quiet", false);
  const bool check = flags.get_bool("check", false);
  const std::int64_t seed_override = flags.get_int("seed", -1);
  const std::int64_t population_override = flags.get_int("population", 0);
  const auto& positional = flags.positional();
  flags.reject_unconsumed();
  if (positional.size() != 1) {
    std::cerr << "usage: scenario_runner <scenario.json> [--json PATH] "
                 "[--seed S] [--population N] [--trace PATH] "
                 "[--flight PATH] [--sample DT] [--check] [--quiet]\n";
    return 2;
  }

  scenario::Scenario s = scenario::load_scenario(positional.front());
  if (seed_override >= 0) {
    s.seed = static_cast<std::uint64_t>(seed_override);
  }
  if (population_override > 0) {
    s.population = static_cast<std::size_t>(population_override);
  }
  if (sample_override > 0.0) {
    s.sample_interval = sample_override;
  }

  Timer wall;
  scenario::Runner runner(s);
  if (!trace_path.empty()) runner.set_trace();
  if (!flight_path.empty()) runner.record_flight();
  const scenario::Report rep = runner.run();
  const Json doc = rep.to_json();
  if (!json_path.empty()) {
    write_json_file(json_path, doc);
  } else if (!quiet) {
    doc.write(std::cout);
    std::cout << "\n";
  }
  if (!trace_path.empty()) {
    write_json_file(trace_path,
                    runner.harness().harness().tracer().to_chrome_json());
    std::cerr << "[scenario] trace ("
              << runner.harness().harness().tracer().records().size()
              << " events) written to " << trace_path << "\n";
  }
  if (!flight_path.empty()) {
    write_json_file(flight_path,
                    runner.harness().harness().recorder().to_json());
    std::cerr << "[scenario] flight-recorder dump written to " << flight_path
              << "\n";
  }
  std::cerr << "[scenario] \"" << rep.name << "\": "
            << rep.events_processed << " events, "
            << rep.wire.transmissions << " transmissions, "
            << rep.queries << " queries in " << wall.seconds()
            << "s wall; quiesced=" << (rep.quiesced ? "yes" : "NO")
            << " converged=" << (rep.converged ? "yes" : "NO") << "\n";
  if (check) {
    // The fuzzer's oracle clauses, verbatim (scenario::judge_run), so
    // this CLI and CI can never disagree with the fuzzer about health;
    // a violation names the clause and its offending counts.
    const scenario::Verdict v = scenario::judge_run(runner, rep);
    if (!v.ok) {
      std::cerr << "[scenario] --check violation: " << v.violation << "\n";
      return 1;
    }
  }
  return rep.quiesced && rep.converged ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "scenario_runner: " << e.what() << "\n";
  return 1;
}
