// scenario_runner -- execute a recorded scenario file and emit its report.
//
//   $ ./scenario_runner scenarios/partition_heal.json
//   $ ./scenario_runner scenarios/steady_churn.json --json report.json
//   $ ./scenario_runner scenarios/flash_crowd_join.json --seed 99 --quiet
//
// The positional argument is a scenario JSON document (see DESIGN.md,
// "Scenario API"); the report JSON goes to stdout (or --json PATH).
// Replays are deterministic: the same file with the same seed produces a
// bit-identical report.  Exit status is 0 only when the run quiesced and
// the final differential audit converged, so CI can smoke-replay every
// committed scenario with a shell loop.
//
// Flags:
//   --json PATH    write the report to PATH instead of stdout
//   --seed S       override the scenario's seed
//   --population N override the scenario's initial population
//   --check        require every issued query to complete (failover audit)
//   --quiet        suppress the report (status comes from the exit code)
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "scenario/runner.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const std::string json_path = flags.get_string("json", "");
  const bool quiet = flags.get_bool("quiet", false);
  const bool check = flags.get_bool("check", false);
  const std::int64_t seed_override = flags.get_int("seed", -1);
  const std::int64_t population_override = flags.get_int("population", 0);
  const auto& positional = flags.positional();
  flags.reject_unconsumed();
  if (positional.size() != 1) {
    std::cerr << "usage: scenario_runner <scenario.json> [--json PATH] "
                 "[--seed S] [--population N] [--check] [--quiet]\n";
    return 2;
  }

  scenario::Scenario s = scenario::load_scenario(positional.front());
  if (seed_override >= 0) {
    s.seed = static_cast<std::uint64_t>(seed_override);
  }
  if (population_override > 0) {
    s.population = static_cast<std::size_t>(population_override);
  }

  Timer wall;
  const scenario::Report rep = scenario::run_scenario(s);
  const Json doc = rep.to_json();
  if (!json_path.empty()) {
    write_json_file(json_path, doc);
  } else if (!quiet) {
    doc.write(std::cout);
    std::cout << "\n";
  }
  std::cerr << "[scenario] \"" << rep.name << "\": "
            << rep.events_processed << " events, "
            << rep.wire.transmissions << " transmissions, "
            << rep.queries << " queries in " << wall.seconds()
            << "s wall; quiesced=" << (rep.quiesced ? "yes" : "NO")
            << " converged=" << (rep.converged ? "yes" : "NO") << "\n";
  if (check && rep.completed != rep.queries) {
    std::cerr << "[scenario] --check: only " << rep.completed << "/"
              << rep.queries << " queries completed\n";
    return 1;
  }
  return rep.quiesced && rep.converged ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "scenario_runner: " << e.what() << "\n";
  return 1;
}
