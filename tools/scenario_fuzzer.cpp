// scenario_fuzzer -- seeded random timelines vs the differential oracle.
//
//   $ ./scenario_fuzzer --seeds 1..200
//   $ ./scenario_fuzzer --seeds 1..50 --out scenarios/regressions
//   $ ./scenario_fuzzer --seeds 1..50 --nasty 2 --nasty-out /tmp/nasty
//
// Each seed deterministically generates one random scenario over the
// full event vocabulary (churn, crash-stop, stalls, loss bursts,
// latency spikes, duplication, targeted adversaries, partitions, query
// floods), runs it through scenario::Runner, and judges the run:
// quiescence, the strict differential view audit, query completion, and
// exact post-quiescence probe queries.  Violations are delta-debugged
// to 1-minimal reproducers and (with --out) written as JSON ready to
// commit under scenarios/regressions/ -- the CI replay corpus.  Each
// reproducer ships with its explanation: the violating run's
// flight-recorder dump (*.flightrec.json, what every node saw last) and
// causal trace (*.trace.json, Perfetto-loadable; feed to
// tools/trace_inspect to ask why a query re-issued).
//
// The whole sweep is bit-deterministic: the same --seeds range prints
// the same findings and writes byte-identical minimized JSON.
//
// Flags:
//   --seeds A..B    inclusive seed range (default 1..20)
//   --out DIR       write minimized findings to DIR/regression_seedN.json
//   --nasty K       also report the K highest-pressure CLEAN timelines
//   --nasty-out DIR write those as DIR/adversarial_seedN.json
//   --max-events N  generator timeline-length cap (default 10)
//   --quiet         suppress per-seed progress
//
// Exit status: 1 when any finding was detected, else 0.
#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "scenario/fuzz.hpp"

namespace {

bool parse_range(const std::string& text, std::uint64_t& from,
                 std::uint64_t& to) {
  const auto dots = text.find("..");
  if (dots == std::string::npos) return false;
  try {
    from = std::stoull(text.substr(0, dots));
    to = std::stoull(text.substr(dots + 2));
  } catch (const std::exception&) {
    return false;
  }
  return from <= to;
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const std::string seeds = flags.get_string("seeds", "1..20");
  const std::string out_dir = flags.get_string("out", "");
  const std::string nasty_dir = flags.get_string("nasty-out", "");
  const std::size_t nasty_k =
      static_cast<std::size_t>(flags.get_int("nasty", 0));
  const bool quiet = flags.get_bool("quiet", false);
  scenario::FuzzConfig config;
  config.max_events =
      static_cast<std::size_t>(flags.get_int("max-events", 10));
  flags.reject_unconsumed();

  std::uint64_t from = 0;
  std::uint64_t to = 0;
  if (!parse_range(seeds, from, to)) {
    std::cerr << "scenario_fuzzer: --seeds wants A..B with A <= B, got \""
              << seeds << "\"\n";
    return 2;
  }

  Timer wall;
  const scenario::OracleLimits limits;
  std::vector<scenario::Finding> findings;
  // Pressure scores of clean seeds, gathered for --nasty ranking.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> clean;  // (score, seed)
  for (std::uint64_t seed = from; seed <= to; ++seed) {
    const scenario::Scenario s = scenario::generate_scenario(seed, config);
    const scenario::Verdict v = scenario::run_oracle(s, limits);
    if (v.ok) {
      if (nasty_k > 0) clean.emplace_back(scenario::nastiness(s), seed);
      if (!quiet) {
        std::cerr << "[fuzz] seed " << seed << ": clean (" << s.timeline.size()
                  << " events)\n";
      }
      continue;
    }
    scenario::Finding f;
    f.seed = seed;
    f.violation = v.violation;
    f.minimized = scenario::minimize(s, limits, &f.shrink_replays);
    f.minimized.name = "regression_seed" + std::to_string(seed);
    f.flight_recorder = v.flight_recorder;
    f.scenario = s;
    std::cerr << "[fuzz] seed " << seed << ": FINDING -- " << f.violation
              << " (minimized " << s.timeline.size() << " -> "
              << f.minimized.timeline.size() << " events in "
              << f.shrink_replays << " replays)\n";
    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      const std::string path =
          out_dir + "/" + f.minimized.name + ".json";
      scenario::save_scenario(path, f.minimized);
      // The explanation rides beside the reproducer: the minimized run's
      // flight-recorder dump and causal trace (one traced replay; the
      // trace is off during fuzzing itself).
      const scenario::Verdict mv = scenario::run_oracle(f.minimized, limits);
      const std::string& dump =
          mv.flight_recorder.empty() ? f.flight_recorder : mv.flight_recorder;
      if (!dump.empty()) {
        const std::string fr_path =
            out_dir + "/" + f.minimized.name + ".flightrec.json";
        write_json_file(fr_path, Json::parse(dump));
        std::cerr << "[fuzz]   flight recorder written to " << fr_path
                  << "\n";
      }
      scenario::Runner traced(f.minimized);
      traced.set_trace();
      try {
        (void)traced.run();
      } catch (const std::exception&) {
        // Execution-aborted findings still leave a usable partial trace.
      }
      const std::string trace_path =
          out_dir + "/" + f.minimized.name + ".trace.json";
      write_json_file(trace_path,
                      traced.harness().harness().tracer().to_chrome_json());
      std::cerr << "[fuzz]   trace written to " << trace_path << "\n";
      std::cerr << "[fuzz]   reproducer written to " << path << "\n";
    }
    findings.push_back(std::move(f));
  }

  if (nasty_k > 0 && !clean.empty()) {
    // Highest pressure first; seed breaks ties so the ranking (and any
    // files written) is deterministic.
    std::sort(clean.begin(), clean.end(), [](const auto& a, const auto& b) {
      return a.first != b.first ? a.first > b.first : a.second < b.second;
    });
    for (std::size_t i = 0; i < std::min(nasty_k, clean.size()); ++i) {
      const auto [score, seed] = clean[i];
      std::cerr << "[fuzz] nasty #" << (i + 1) << ": seed " << seed
                << " (pressure " << score << ")\n";
      if (!nasty_dir.empty()) {
        std::filesystem::create_directories(nasty_dir);
        scenario::Scenario s = scenario::generate_scenario(seed, config);
        s.name = "adversarial_seed" + std::to_string(seed);
        scenario::save_scenario(nasty_dir + "/" + s.name + ".json", s);
      }
    }
  }

  std::cerr << "[fuzz] " << (to - from + 1) << " seeds, " << findings.size()
            << " findings in " << wall.seconds() << "s wall\n";
  return findings.empty() ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "scenario_fuzzer: " << e.what() << "\n";
  return 1;
}
