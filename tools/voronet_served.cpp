// voronet_served: host one overlay shard behind a socket.
//
// Grows an overlay (message-level joins to quiescence), mounts the
// serving front-end, and serves serve_wire clients until one sends
// kShutdown.  The companion client is tools/voronet_query_client.cpp;
// together they are the repo's multi-process quickstart (README.md).
//
//   voronet_served --listen uds:/tmp/voronet.sock --objects 150
//   voronet_served --listen tcp:127.0.0.1:7447 --backend socket
//
// Flags:
//   --listen SPEC       client-facing address (default: fresh UDS path)
//   --objects N         overlay population (default 150)
//   --seed S            run seed
//   --backend B         overlay-internal transport: thread|sim|socket
//   --shards K          thread-backend actor threads (0 = derive)
//   --transport-listen  socket-backend internal listen spec
//   --queue-capacity N  admission bound of the serving front-end
#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "net/serve_loop.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;

  Flags flags(argc, argv);
  net::ServedConfig config;
  config.listen = flags.get_string("listen", "");
  config.objects =
      static_cast<std::size_t>(flags.get_int("objects", 150));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0x5e12d));
  config.shards = static_cast<unsigned>(flags.get_int("shards", 0));
  config.transport_listen = flags.get_string("transport-listen", "");
  config.serve.queue_capacity =
      static_cast<std::size_t>(flags.get_int("queue-capacity", 256));
  const std::string backend = flags.get_string("backend", "thread");
  if (backend == "thread") {
    config.backend = protocol::TransportKind::kThread;
  } else if (backend == "sim") {
    config.backend = protocol::TransportKind::kSim;
  } else if (backend == "socket") {
    config.backend = protocol::TransportKind::kSocket;
  } else {
    std::cerr << "voronet_served: unknown --backend " << backend
              << " (thread|sim|socket)\n";
    return 2;
  }
  flags.reject_unconsumed();

  net::ServedShard shard(config);
  // The ready line is the client's cue in scripted runs; flush it before
  // entering the serve loop.
  std::cout << "voronet_served: " << config.objects << " objects ("
            << backend << " backend), listening on "
            << shard.address().spec() << std::endl;
  const std::uint64_t answered = shard.serve();
  std::cout << "voronet_served: shutdown after " << answered
            << " answered queries\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "voronet_served: " << e.what() << "\n";
  return 1;
}
