// voronet_query_client: drive a voronet_served shard over its socket.
//
// Connects (retrying while the server is still populating), runs the
// open-loop Poisson workload of serve::run_open_loop against the remote
// shard -- identical arrival schedule, wall-clock latencies measured at
// this process -- and prints the merged report.  Exit status is the
// acceptance gate CI's multi-process smoke keys on:
//
//   0  drained, recall == precision == 1 over graded tickets, and
//      every offered query completed;
//   1  any of those failed (or the connection died).
//
// Flags:
//   --connect SPEC   server address (required), e.g. uds:/tmp/v.sock
//   --rate QPS       mean arrival rate        (default 200)
//   --duration S     arrival window           (default 0.5)
//   --seed S         workload seed
//   --allow-shed     tolerate admission rejections (high-rate runs)
//   --json PATH      write the report as JSON
//   --no-shutdown    leave the server running afterwards
#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.hpp"
#include "common/json.hpp"
#include "net/serve_client.hpp"
#include "serve/open_loop.hpp"

int main(int argc, char** argv) try {
  using namespace voronet;

  Flags flags(argc, argv);
  const std::string connect = flags.get_string("connect", "");
  serve::LoadConfig load;
  load.rate = flags.get_double("rate", 200.0);
  load.duration = flags.get_double("duration", 0.5);
  load.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0x10ad));
  const bool allow_shed = flags.get_bool("allow-shed", false);
  const std::string json_path = flags.get_string("json", "");
  const bool shutdown = !flags.get_bool("no-shutdown", false);
  flags.reject_unconsumed();
  if (connect.empty()) {
    std::cerr << "voronet_query_client: --connect is required\n";
    return 2;
  }

  net::ServeClient client(connect);
  std::cout << "voronet_query_client: connected to " << connect << " ("
            << client.objects() << " objects)\n";
  net::ServeFrame server_report;
  const serve::LoadReport r =
      net::run_open_loop_remote(client, load, &server_report);
  if (shutdown) client.shutdown_server();

  std::printf(
      "offered %llu  completed %llu  rejected %llu  cache %llu  "
      "batches %llu (%.2f/batch)\n",
      static_cast<unsigned long long>(r.offered),
      static_cast<unsigned long long>(r.completed),
      static_cast<unsigned long long>(r.rejected),
      static_cast<unsigned long long>(r.cache_hits),
      static_cast<unsigned long long>(r.batches), r.mean_batch);
  std::printf("latency p50 %.3f ms  p99 %.3f ms  max %.3f ms\n", r.p50 * 1e3,
              r.p99 * 1e3, r.max_latency * 1e3);
  std::printf(
      "graded %llu  recall %.4f  precision %.4f  drained %s  "
      "overlay wire bytes %llu\n",
      static_cast<unsigned long long>(r.graded), r.recall, r.precision,
      r.drained ? "yes" : "no",
      static_cast<unsigned long long>(server_report.wire_bytes));

  if (!json_path.empty()) {
    Json doc = Json::object();
    doc.set("connect", Json::string(connect));
    doc.set("objects", Json::integer(client.objects()));
    doc.set("rate_qps", Json::number(load.rate));
    doc.set("offered", Json::integer(r.offered));
    doc.set("completed", Json::integer(r.completed));
    doc.set("rejected", Json::integer(r.rejected));
    doc.set("completion_rate", Json::number(r.completion_rate));
    doc.set("cache_hits", Json::integer(r.cache_hits));
    doc.set("batches", Json::integer(r.batches));
    doc.set("mean_batch", Json::number(r.mean_batch));
    doc.set("p50_s", Json::number(r.p50));
    doc.set("p99_s", Json::number(r.p99));
    doc.set("max_s", Json::number(r.max_latency));
    doc.set("graded", Json::integer(r.graded));
    doc.set("recall", Json::number(r.recall));
    doc.set("precision", Json::number(r.precision));
    doc.set("drained", Json::boolean(r.drained));
    doc.set("wire_bytes", Json::integer(server_report.wire_bytes));
    write_json_file(json_path, doc);
    std::cout << "wrote " << json_path << "\n";
  }

  bool ok = true;
  const auto fail = [&ok](const std::string& what) {
    std::cerr << "GATE FAIL: " << what << "\n";
    ok = false;
  };
  if (!r.drained) fail("transport did not quiesce");
  if (r.graded > 0 && (r.recall != 1.0 || r.precision != 1.0)) {
    fail("graded exactness violated");
  }
  if (!allow_shed && r.completion_rate != 1.0) {
    fail("offered queries shed or lost");
  }
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "voronet_query_client: " << e.what() << "\n";
  return 1;
}
