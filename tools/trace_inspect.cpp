// trace_inspect -- query and validate Chrome trace_event JSON emitted by
// scenario_runner --trace / the fuzzer's finding artifacts.
//
//   $ ./trace_inspect trace.json                  # summary
//   $ ./trace_inspect trace.json --query 3        # why did query 3 re-issue?
//   $ ./trace_inspect trace.json --node 17        # what happened on node 17?
//   $ ./trace_inspect trace.json --validate       # CI: well-formedness gate
//
// The trace is flat trace_event JSON (Perfetto-loadable); the causal
// structure lives in args.span / args.parent (trace_event has no native
// parent for complete events).  This tool rebuilds the tree: --query
// prints a query's whole causal span tree -- greedy route hops, flood
// serves, transfer attempts, stale-entry taints, branch aborts, epoch
// re-issues -- which answers "why did this query need another epoch" and
// "where did its messages go" without opening a UI.
//
// --validate is the CI gate: parses the file, checks every event carries
// the required trace_event keys, durations are non-negative, span ids
// are unique and every args.parent names an existing span.  Exit 1 on
// any violation, with the offending event index.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/json.hpp"

namespace {

using voronet::Json;

struct TraceEvent {
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
  std::string name;
  std::string ph;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds (ph == "X")
  std::int64_t tid = 0;
  std::string args;  // rendered "k=v" pairs, span/parent excluded
};

std::string render_args(const Json& args) {
  std::string out;
  for (const auto& [key, value] : args.children()) {
    if (key == "span" || key == "parent") continue;
    if (!out.empty()) out += " ";
    out += key + "=";
    out += value.is_string() ? value.as_string() : value.str();
  }
  return out;
}

/// Load + structural checks in one pass.  Returns false (and complains on
/// stderr) when the file is not well-formed trace_event JSON.
bool load(const std::string& path, std::vector<TraceEvent>& events) {
  Json doc;
  try {
    doc = voronet::read_json_file(path);
  } catch (const std::exception& e) {
    std::cerr << "trace_inspect: " << e.what() << "\n";
    return false;
  }
  const Json* list = doc.find("traceEvents");
  if (list == nullptr || !list->is_array()) {
    std::cerr << "trace_inspect: no traceEvents array\n";
    return false;
  }
  std::map<std::uint64_t, std::size_t> by_span;
  for (std::size_t i = 0; i < list->size(); ++i) {
    const Json& ev = list->item(i);
    const auto fail = [&](const std::string& what) {
      std::cerr << "trace_inspect: traceEvents[" << i << "]: " << what
                << "\n";
      return false;
    };
    const Json* name = ev.find("name");
    const Json* ph = ev.find("ph");
    const Json* ts = ev.find("ts");
    const Json* args = ev.find("args");
    if (name == nullptr || !name->is_string()) return fail("missing name");
    if (ph == nullptr || !ph->is_string()) return fail("missing ph");
    if (ts == nullptr || !ts->is_number()) return fail("missing ts");
    if (ev.find("pid") == nullptr || ev.find("tid") == nullptr) {
      return fail("missing pid/tid");
    }
    if (args == nullptr || !args->is_object()) return fail("missing args");
    TraceEvent t;
    t.name = name->as_string();
    t.ph = ph->as_string();
    t.ts = ts->as_double();
    t.tid = ev.at("tid").as_int();
    if (t.ph == "X") {
      const Json* dur = ev.find("dur");
      if (dur == nullptr || !dur->is_number()) {
        return fail("complete event without dur");
      }
      t.dur = dur->as_double();
      if (t.dur < 0.0) return fail("negative dur");
    } else if (t.ph != "i") {
      return fail("unexpected ph \"" + t.ph + "\"");
    }
    t.span = args->get_uint("span", 0);
    t.parent = args->get_uint("parent", 0);
    if (t.span == 0) return fail("args.span missing or zero");
    if (!by_span.emplace(t.span, i).second) {
      return fail("duplicate span id " + std::to_string(t.span));
    }
    t.args = render_args(*args);
    events.push_back(std::move(t));
  }
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].parent != 0 && by_span.count(events[i].parent) == 0) {
      std::cerr << "trace_inspect: traceEvents[" << i
                << "]: parent span " << events[i].parent
                << " does not exist\n";
      return false;
    }
  }
  return true;
}

void print_tree(const std::vector<TraceEvent>& events,
                const std::vector<std::vector<std::size_t>>& children,
                std::size_t idx, int depth) {
  const TraceEvent& t = events[idx];
  std::cout << std::string(static_cast<std::size_t>(depth) * 2, ' ')
            << (t.ph == "X" ? "[span] " : "[inst] ") << t.name << " @"
            << t.ts / 1000.0 << "ms";
  if (t.ph == "X") std::cout << " +" << t.dur / 1000.0 << "ms";
  std::cout << " node=" << t.tid;
  if (!t.args.empty()) std::cout << "  " << t.args;
  std::cout << "\n";
  for (const std::size_t c : children[idx]) {
    print_tree(events, children, c, depth + 1);
  }
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace voronet;
  const Flags flags(argc, argv);
  const bool validate = flags.get_bool("validate", false);
  const std::int64_t query = flags.get_int("query", -1);
  const std::int64_t node = flags.get_int("node", ~0LL);
  const auto& positional = flags.positional();
  flags.reject_unconsumed();
  if (positional.size() != 1) {
    std::cerr << "usage: trace_inspect <trace.json> [--validate] "
                 "[--query ID] [--node ID]\n";
    return 2;
  }

  std::vector<TraceEvent> events;
  if (!load(positional.front(), events)) return 1;
  if (validate) {
    std::cout << "ok: " << events.size() << " well-formed trace events\n";
    return 0;
  }

  // Causal index: span id -> event index, parent -> children.
  std::map<std::uint64_t, std::size_t> by_span;
  for (std::size_t i = 0; i < events.size(); ++i) {
    by_span[events[i].span] = i;
  }
  std::vector<std::vector<std::size_t>> children(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].parent != 0) {
      children[by_span[events[i].parent]].push_back(i);
    }
  }

  if (node != ~0LL) {
    std::size_t shown = 0;
    for (const TraceEvent& t : events) {
      if (t.tid != node) continue;
      std::cout << t.ts / 1000.0 << "ms  " << t.name;
      if (!t.args.empty()) std::cout << "  " << t.args;
      std::cout << "\n";
      ++shown;
    }
    std::cout << shown << " events on node " << node << "\n";
    return 0;
  }

  if (query >= 0) {
    // The query's root span carries args query=<id>; everything below it
    // is the causal tree, including the explanation instants
    // (stale_entry, branch_abort, reissue_scheduled, retransmit).
    const std::string want = "query=" + std::to_string(query);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const TraceEvent& t = events[i];
      if (t.name != "query" ||
          t.args.find(want) == std::string::npos ||
          t.parent != 0) {
        continue;
      }
      print_tree(events, children, i, 0);
      // The short answer to "why did it re-issue": collect the taints.
      std::size_t stale = 0, aborts = 0, reissues = 0, retransmits = 0;
      std::vector<std::size_t> stack = {i};
      while (!stack.empty()) {
        const std::size_t at = stack.back();
        stack.pop_back();
        const std::string& n = events[at].name;
        if (n == "stale_entry") ++stale;
        if (n == "branch_abort") ++aborts;
        if (n == "reissue_scheduled") ++reissues;
        if (n == "retransmit") ++retransmits;
        for (const std::size_t c : children[at]) stack.push_back(c);
      }
      std::cout << "summary: " << reissues << " re-issue(s), " << stale
                << " stale view entr(ies), " << aborts
                << " branch abort(s), " << retransmits
                << " retransmission(s)\n";
      return 0;
    }
    std::cerr << "trace_inspect: no root span for query " << query << "\n";
    return 1;
  }

  // Default: per-name census, queries listed.
  std::map<std::string, std::size_t> census;
  for (const TraceEvent& t : events) ++census[t.name];
  for (const auto& [name, count] : census) {
    std::cout << count << "\t" << name << "\n";
  }
  std::cout << events.size() << " events\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "trace_inspect: " << e.what() << "\n";
  return 1;
}
